//! The distributed dynamic triangle engine: incremental triangle
//! maintenance executed *inside* the CONGEST model, over the resumable
//! epoch engine of `congest-sim`.
//!
//! The paper's Theorem 1/2 drivers answer one-shot queries on a static
//! graph; the centralized streaming engines
//! ([`TriangleIndex`](crate::TriangleIndex),
//! [`ShardedTriangleIndex`](crate::ShardedTriangleIndex)) maintain the
//! triangle set incrementally but on one machine.
//! [`DistributedTriangleEngine`] is the missing counterpart: every graph
//! node is a network node that **owns its adjacency slice** `N(v)` and
//! maintains the triangles it can see; each [`DeltaBatch`] becomes one
//! epoch of the simulated network, in which edge deltas are broadcast to
//! the affected neighbourhoods under the B-bit per-link bandwidth
//! budget. The per-batch *round* and *message* cost — the paper's own
//! yardstick — is then directly comparable to re-running the static
//! drivers (`find_triangles` / `list_triangles` of `congest-triangles`)
//! after every batch, which is what the `dynamic_bench` harness
//! measures.
//!
//! # The per-batch protocol
//!
//! The coordinator (this engine — the ingest tier that owns the delta
//! stream) coalesces the batch to at most one op per edge, classifies
//! the survivors against the current graph into effective removals `R`
//! and insertions `I`, and injects each node's incident slice plus the
//! two global phase lengths as out-of-band client input
//! ([`Simulation::inject`]). A batch that coalesces or classifies to
//! nothing runs **no epoch at all** — its documented floor cost is zero
//! rounds, zero messages, zero bits. Otherwise one epoch runs two
//! broadcast phases:
//!
//! 1. **Removal phase** (`R_rm` rounds): the assigned broadcasters of a
//!    removed edge `{u, v}` stream the delta to their (pre-batch)
//!    neighbours, packing as many edges per message as the bandwidth
//!    allows. A receiver `w` that sees `{u, v}` with both endpoints
//!    still in its own list records the candidate dead triangle
//!    `{u, v, w}` — a purely local check, because `w` owns `N(w)`. At
//!    the phase boundary every node applies its own adjacency
//!    mutations, switching the network to the post-batch graph.
//! 2. **Insertion phase** (`R_ins` rounds): the same broadcast for
//!    inserted edges, now over the post-batch neighbourhoods, with
//!    receivers recording candidate born triangles against their updated
//!    lists.
//!
//! ## Helper-split hub broadcasts ([`HubSplit`])
//!
//! Every third vertex `w` of a triangle through `{u, v}` is adjacent to
//! *both* endpoints, so a broadcast by **either one** reaches every
//! detector — having both endpoints broadcast (the original protocol,
//! kept as [`HubSplit::Off`]) is pure redundancy that the dedup merge
//! absorbs. The phase length is the *longest* per-node queue,
//! `⌈k/⌊B/2w⌋⌉` rounds for a hub with `k` incident deltas, so a single
//! hot vertex used to stretch the whole network's epoch. Under
//! [`HubSplit::Auto`] (the default) the coordinator therefore computes a
//! per-phase budget — the *average* incident load, mirroring how the
//! paper's algorithm A1 partitions heavy edges across the network — and,
//! for every node over it, reassigns slices of the hub's delta list to
//! **helper neighbours**: each offloaded delta's other endpoint, which
//! is adjacent both to the hub and to every detector of that delta, and
//! so can rebroadcast on the hub's behalf *in the same phase*. The
//! descriptor carries a per-delta broadcast flag; phase lengths are
//! computed from the post-split queues, so hotspot epochs scale with the
//! average rather than the maximum incident load. Every delta keeps at
//! least one broadcaster ([`HubSplit::Budget`] forces an explicit
//! per-node budget, which the property tests drive to 1).
//!
//! ## Convergecast aggregation ([`Aggregation`])
//!
//! Candidates are supersets observed from several vantage points (a
//! triangle dying through two removed edges is reported by up to four
//! nodes). Under [`Aggregation::Free`] the coordinator simply drains
//! every node's candidate lists after the epoch — a merge the network
//! never pays for, which the subgraph-finding surveys flag as the
//! hidden cost of distributed listing benchmarks. The default,
//! [`Aggregation::Convergecast`], makes the merge itself
//! CONGEST-accounted: the coordinator computes a BFS forest of the
//! epoch topology (parents and child counts ride in the injected
//! descriptor), and after the broadcast phases every node dedup-merges
//! its own observations with its children's — through the same
//! `shard.rs` merge core the sharded engine's phase-2 uses — and
//! streams the merged set to its parent in `≤ B`-bit chunks over extra
//! accounted rounds. Only the forest roots are read by the coordinator,
//! so [`CongestCost`] (including its
//! [`convergecast_rounds`](CongestCost::convergecast_rounds) split-out)
//! reports the true rounds/messages/bits of aggregation. In both modes
//! the final merge into the global [`TriangleSet`] goes through
//! `shard::merge_removed_candidates` / `merge_added_candidates`, so the
//! correctness argument is word-for-word the sharded one: retired
//! triangles are exactly the triangles of `G` containing an edge of
//! `R`, born triangles exactly the triangles of `G' = G − R + I`
//! containing an edge of `I`.
//!
//! Because links appear and disappear with the edges they carry, the
//! engine keeps the simulator's communication topology in sync with the
//! evolving graph ([`Simulation::update_topology`]): during an epoch the
//! topology is the **union** `G ∪ G'` (a removed link still carries its
//! own tear-down notification — and its leg of the convergecast — before
//! going down; an inserted link exists as soon as its edge does), and
//! after the epoch it settles to `G'`. The BFS forest spans that union,
//! and all observers of any one triangle are pairwise connected within
//! one component, so per-component aggregation loses nothing.
//!
//! Payloads are validated on receipt: ids are decoded against the
//! domain `0..n`, edges and triangles must have distinct vertices, and
//! streams must use every bit they announce. A violation — impossible
//! for payloads this engine produces, but reachable through corrupt or
//! hostile injected traffic — surfaces as [`StreamError::Protocol`]
//! from [`DistributedTriangleEngine::apply`] instead of silently
//! truncating ids into range.
//!
//! Per-batch tallies match the sharded pipeline path (the coalescer
//! counts dropped ops as no-ops rather than applying them), and the
//! final graph and triangle set are identical to the strictly ordered
//! [`TriangleIndex`](crate::TriangleIndex) on any stream —
//! property-tested across all four workload generator families, in
//! every scheduling/aggregation mode, on both executors.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;
use std::time::Duration;

use congest_graph::{AdjacencyView, Edge, Graph, NodeId, Triangle, TriangleSet};
use congest_hash::{Checksum61, CHECKSUM_BITS};
use congest_sim::{
    Bandwidth, EpochReport, FaultPlan, NodeProgram, NodeStatus, ReceivedMessage, RoundContext,
    SimConfig, Simulation, ThreadedSimulation,
};
use congest_wire::{BitReader, BitWriter, IdCodec, Payload};

use crate::delta::{DeltaBatch, DeltaOp, PendingBuffer};
use crate::index::{validate_batch, ApplyMode, ApplyReport, StreamError};
use crate::shard::{
    merge_added_candidates, merge_removed_candidates, sorted_insert, sorted_remove,
};

/// Width of the phase-length and list-length fields in the injected
/// batch descriptor (out-of-band client input, not CONGEST traffic) and
/// of the candidate-count fields in convergecast streams.
const COUNT_BITS: usize = 32;

/// Bits of the self-checking trailer every hardened broadcast stream
/// ends with: an edge count plus a [`Checksum61`] over the stream's id
/// words. Senders append it in the last `⌈93/B⌉` rounds of the phase;
/// a receiver only converts a buffered stream into candidates once the
/// trailer verifies.
const TRAILER_BITS: usize = COUNT_BITS + CHECKSUM_BITS;

/// Width of the per-node convergecast deadline field in hardened
/// descriptors (an absolute round number; 32 bits could overflow on
/// pathological bounds, 48 cannot in practice).
const DEADLINE_BITS: usize = 48;

/// How many retransmission epochs the coordinator schedules before
/// giving up with [`StreamError::RecoveryExhausted`]. Each attempt
/// re-sends only the still-unverified streams, so under realistic loss
/// rates one or two attempts settle everything. The budget is sized for
/// narrow links: at small `n` the checksum trailer alone spans ~10
/// messages, so a single attempt under a few-percent loss rate fails
/// with non-trivial probability and several retries must stay cheap.
const MAX_REPAIR_ATTEMPTS: u32 = 8;

/// Copies the next `len` bits from `reader` to `writer` in ≤ 64-bit
/// steps (the convergecast's chunking and reassembly both move
/// arbitrary-length bit runs this way).
///
/// # Panics
///
/// Panics if `reader` holds fewer than `len` bits — callers always
/// bound `len` by the source payload's length.
fn copy_bits(reader: &mut BitReader<'_>, writer: &mut BitWriter, len: usize) {
    let mut remaining = len;
    while remaining > 0 {
        let step = remaining.min(64);
        writer.write_bits(reader.read_bits(step).expect("length-bounded read"), step);
        remaining -= step;
    }
}

/// How the coordinator schedules the per-phase delta broadcasts (the
/// module-level documentation in `distributed.rs` walks through the
/// full protocol).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum HubSplit {
    /// The original protocol: both endpoints broadcast every incident
    /// delta, so a hub with `k` incident deltas stretches the phase to
    /// `⌈k/⌊B/2w⌋⌉` rounds. Kept as the benchmark control.
    Off,
    /// Helper-split scheduling with the per-phase budget derived from
    /// the **average** incident load of the touched nodes: every node
    /// over it sheds deltas to their other endpoints (its helper
    /// neighbours) while every delta keeps at least one broadcaster.
    /// The default.
    #[default]
    Auto,
    /// Helper-split scheduling with an explicit per-node per-phase
    /// budget of this many broadcast deltas (clamped to at least 1).
    /// The property tests force 1 to split as aggressively as coverage
    /// allows.
    Budget(usize),
}

impl HubSplit {
    /// Short lowercase name, used in logs.
    pub fn name(self) -> &'static str {
        match self {
            HubSplit::Off => "off",
            HubSplit::Auto => "auto",
            HubSplit::Budget(_) => "budget",
        }
    }
}

/// How per-node candidate sets reach the coordinator after the
/// broadcast phases (the module-level documentation in
/// `distributed.rs` walks through the convergecast).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Aggregation {
    /// The coordinator reads every node's candidate lists directly —
    /// a merge the simulated network never pays for. Kept as the
    /// benchmark control so the aggregation cost can be measured.
    Free,
    /// Candidates are dedup-merged up a BFS forest of the epoch
    /// topology in extra **accounted** rounds; the coordinator reads
    /// only the forest roots, and [`CongestCost`] reports the true
    /// cost of the merge. The default.
    #[default]
    Convergecast,
}

impl Aggregation {
    /// Short lowercase name, used in logs.
    pub fn name(self) -> &'static str {
        match self {
            Aggregation::Free => "free",
            Aggregation::Convergecast => "convergecast",
        }
    }
}

/// Which epoch executor drives the simulated network inside a
/// [`DistributedTriangleEngine`].
///
/// Both executors expose the same resumable epoch API and produce
/// **bit-identical** metrics and node states (`congest-sim`'s test suite
/// checks this), so the choice never affects results — only how the
/// rounds are executed on the host machine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum SimExecutor {
    /// The sequential engine: one host thread steps every node. Fastest
    /// for experiment sweeps (no thread or channel overhead) and the
    /// default.
    #[default]
    Sequential,
    /// [`ThreadedSimulation`]: one host thread per network node,
    /// synchronized round-by-round by a coordinator. Demonstrates that
    /// the dynamic protocol relies only on message passing, and lets a
    /// workload exploit host parallelism when per-round node work is
    /// heavy.
    Threaded,
}

impl SimExecutor {
    /// Short lowercase name, used in logs.
    pub fn name(self) -> &'static str {
        match self {
            SimExecutor::Sequential => "sequential",
            SimExecutor::Threaded => "threaded",
        }
    }
}

/// The executor-polymorphic epoch engine: both variants keep node
/// programs alive across [`run_epoch`](EpochEngine::run_epoch) calls.
enum EpochEngine {
    Sequential(Simulation<DynamicTriangleNode>),
    Threaded(ThreadedSimulation<DynamicTriangleNode>),
}

impl EpochEngine {
    fn new(graph: &Graph, config: SimConfig, executor: SimExecutor) -> Self {
        let factory = |info: &congest_sim::NodeInfo| {
            DynamicTriangleNode::new(info.id, info.neighbors.clone())
        };
        match executor {
            SimExecutor::Sequential => {
                EpochEngine::Sequential(Simulation::new(graph, config, factory))
            }
            SimExecutor::Threaded => {
                EpochEngine::Threaded(ThreadedSimulation::new(graph, config, factory))
            }
        }
    }

    fn executor(&self) -> SimExecutor {
        match self {
            EpochEngine::Sequential(_) => SimExecutor::Sequential,
            EpochEngine::Threaded(_) => SimExecutor::Threaded,
        }
    }

    fn node_count(&self) -> usize {
        match self {
            EpochEngine::Sequential(sim) => sim.node_count(),
            EpochEngine::Threaded(sim) => sim.node_count(),
        }
    }

    fn program(&self, node: NodeId) -> &DynamicTriangleNode {
        match self {
            EpochEngine::Sequential(sim) => sim.program(node),
            EpochEngine::Threaded(sim) => sim.program(node),
        }
    }

    fn program_mut(&mut self, node: NodeId) -> &mut DynamicTriangleNode {
        match self {
            EpochEngine::Sequential(sim) => sim.program_mut(node),
            EpochEngine::Threaded(sim) => sim.program_mut(node),
        }
    }

    fn inject(&mut self, to: NodeId, payload: Payload) {
        match self {
            EpochEngine::Sequential(sim) => sim.inject(to, payload),
            EpochEngine::Threaded(sim) => sim.inject(to, payload),
        }
    }

    fn update_topology(&mut self, node: NodeId, neighbors: Vec<NodeId>) {
        match self {
            EpochEngine::Sequential(sim) => sim.update_topology(node, neighbors),
            EpochEngine::Threaded(sim) => sim.update_topology(node, neighbors),
        }
    }

    fn run_epoch(&mut self) -> EpochReport {
        match self {
            EpochEngine::Sequential(sim) => sim.run_epoch(),
            EpochEngine::Threaded(sim) => sim.run_epoch(),
        }
    }

    /// Index of the next epoch to run (crash windows are keyed by it).
    fn epoch(&self) -> u64 {
        match self {
            EpochEngine::Sequential(sim) => sim.epoch(),
            EpochEngine::Threaded(sim) => sim.epoch(),
        }
    }

    fn set_fault_plan(&mut self, plan: FaultPlan) {
        match self {
            EpochEngine::Sequential(sim) => sim.set_fault_plan(plan),
            EpochEngine::Threaded(sim) => sim.set_fault_plan(plan),
        }
    }

    fn set_max_rounds(&mut self, max_rounds: u64) {
        match self {
            EpochEngine::Sequential(sim) => sim.set_max_rounds(max_rounds),
            EpochEngine::Threaded(sim) => sim.set_max_rounds(max_rounds),
        }
    }
}

/// CONGEST cost of one epoch (or a running total over all epochs): the
/// quantities the paper's bounds are about.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CongestCost {
    /// Synchronous rounds executed (broadcast *and* aggregation).
    pub rounds: u64,
    /// Messages delivered.
    pub messages: u64,
    /// Payload bits delivered.
    pub bits: u64,
    /// The share of [`rounds`](CongestCost::rounds) spent on the
    /// convergecast aggregation of candidate sets — always 0 under
    /// [`Aggregation::Free`], whose merge the network never executes.
    pub convergecast_rounds: u64,
    /// The share of [`rounds`](CongestCost::rounds) spent on recovery:
    /// the bounded retransmission epochs a hardened engine (one with a
    /// non-quiet [`FaultPlan`]) runs to re-send broadcast streams whose
    /// trailer failed to verify. Always 0 under a quiet plan.
    pub recovery_rounds: u64,
}

impl CongestCost {
    /// The cost of one epoch whose simulator metrics are `metrics`, of
    /// which everything after the `broadcast_rounds`-round prefix was
    /// convergecast aggregation.
    fn from_epoch(metrics: &congest_sim::Metrics, broadcast_rounds: u64) -> Self {
        CongestCost {
            rounds: metrics.rounds,
            messages: metrics.messages,
            bits: metrics.total_bits,
            convergecast_rounds: metrics.rounds.saturating_sub(broadcast_rounds),
            recovery_rounds: 0,
        }
    }

    /// Adds one retransmission epoch's metrics into this batch cost.
    fn add_recovery_epoch(&mut self, metrics: &congest_sim::Metrics) {
        self.rounds += metrics.rounds;
        self.messages += metrics.messages;
        self.bits += metrics.total_bits;
        self.recovery_rounds += metrics.rounds;
    }

    /// Adds `other` into this running total.
    fn accumulate(&mut self, other: &CongestCost) {
        self.rounds += other.rounds;
        self.messages += other.messages;
        self.bits += other.bits;
        self.convergecast_rounds += other.convergecast_rounds;
        self.recovery_rounds += other.recovery_rounds;
    }
}

/// Per-node received-bits imbalance across the epochs run so far: each
/// epoch's skew is the busiest node's received bits over the per-node
/// mean (1.0 = perfectly even, `n` = one node received everything). Hub
/// batches without helper-splitting push this toward the hub's degree;
/// [`HubSplit`] pulls it back down — this is the load-balance story of
/// the paper's bounds made measurable per run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReceivedBitsSkew {
    /// Worst single-epoch skew.
    pub max_ratio: f64,
    /// Mean over epochs of the per-epoch skew.
    pub mean_ratio: f64,
    /// Epochs the statistics cover.
    pub epochs: u64,
}

/// One broadcast stream being reassembled by a hardened receiver: the
/// decoded edges in arrival order plus the trailer bits, verified
/// together at the phase boundary.
#[derive(Default)]
struct StreamBuf {
    edges: Vec<Edge>,
    trailer: BitWriter,
    /// Set when a data chunk failed to decode — the stream can no
    /// longer verify, but buffering continues so the epoch stays in
    /// lockstep.
    corrupt: bool,
}

/// Folds a broadcast queue's edges into the trailer checksum (two id
/// words per edge, in stream order).
fn edge_checksum(edges: &[Edge]) -> u64 {
    let mut cs = Checksum61::new();
    for e in edges {
        cs.update(e.lo().as_u64());
        cs.update(e.hi().as_u64());
    }
    cs.value()
}

/// One network node's program: owns the adjacency slice `N(v)` and runs
/// the two-phase broadcast protocol each epoch (see the
/// [module documentation](self)).
struct DynamicTriangleNode {
    id: NodeId,
    /// This node's slice of the graph: its sorted neighbour list. The
    /// engine's [`AdjacencyView`] reads these slices directly — the
    /// node programs *are* the graph storage.
    adjacency: Vec<NodeId>,
    /// Global phase lengths for the current epoch (from the descriptor).
    rm_rounds: u64,
    ins_rounds: u64,
    /// Effective deltas incident to this node (from the descriptor);
    /// applied locally at the phase boundary.
    my_removes: Vec<Edge>,
    my_inserts: Vec<Edge>,
    /// The subset of the incident deltas this node was assigned to
    /// broadcast (equal to the full lists under [`HubSplit::Off`]; a
    /// hub's over-budget slices are reassigned to helper neighbours).
    bcast_removes: Vec<Edge>,
    bcast_inserts: Vec<Edge>,
    /// Per-neighbour broadcast queues, chunked to `edges_per_message`.
    rm_queues: Vec<(NodeId, Vec<Edge>)>,
    ins_queues: Vec<(NodeId, Vec<Edge>)>,
    /// Candidate triangle deltas observed this epoch; drained by the
    /// coordinator's merge step ([`Aggregation::Free`]) or folded into
    /// the convergecast aggregate at the start of the aggregation
    /// phase.
    dead: Vec<Triangle>,
    born: Vec<Triangle>,
    /// Whether this epoch runs the convergecast aggregation phase.
    aggregate: bool,
    /// This node's parent in the coordinator-computed BFS forest
    /// (`None` for component roots).
    parent: Option<NodeId>,
    /// How many convergecast streams this node must absorb before it
    /// may forward its own aggregate.
    child_count: usize,
    children_done: usize,
    /// Per-child partial convergecast streams, reassembled chunk by
    /// chunk.
    child_streams: BTreeMap<NodeId, BitWriter>,
    /// The dedup-merged candidate aggregates (own observations plus
    /// every finished child stream) — the `shard.rs` merge core keeps
    /// each triangle exactly once, which is also what bounds the bits
    /// forwarded upward.
    agg_dead: TriangleSet,
    agg_born: TriangleSet,
    /// The serialized aggregate, pre-chunked to the link budget, being
    /// streamed to the parent (`None` until the node starts sending).
    up_chunks: Option<VecDeque<Payload>>,
    /// First protocol violation observed this epoch (corrupt payload);
    /// surfaced by the coordinator as [`StreamError::Protocol`].
    protocol_error: Option<String>,
    /// Whether the engine runs with a non-quiet [`FaultPlan`]: streams
    /// then carry self-checking trailers, receivers buffer-and-verify
    /// instead of trusting deliveries, and the node understands repair
    /// descriptors. Set once by the coordinator; a quiet plan leaves
    /// every path below bit-identical to the legacy protocol.
    hardened: bool,
    /// Snapshot of the pre-batch slice, kept so retransmitted removal
    /// streams can still be checked against the graph they refer to.
    pre_adjacency: Vec<NodeId>,
    /// Buffered broadcast streams, keyed by (insertion-phase?, sender).
    stream_bufs: BTreeMap<(bool, NodeId), StreamBuf>,
    /// Senders whose removal / insertion streams verified this epoch
    /// (the coordinator reads these to find the streams that did not).
    verified_rm: BTreeSet<NodeId>,
    verified_ins: BTreeSet<NodeId>,
    /// Absolute round after which this node stops waiting for
    /// convergecast children and forwards a partial aggregate.
    deadline: u64,
    /// Latched when a convergecast stream was rejected or the deadline
    /// fired — the coordinator then degrades to a direct drain.
    agg_trouble: bool,
    /// Repair-epoch state (kind-1 descriptors): phase length, the
    /// streams to re-send, the streams to expect (with their removal
    /// prefix length), and the senders that verified.
    repair_mode: bool,
    repair_rounds: u64,
    repair_queues: Vec<(NodeId, Vec<Edge>)>,
    repair_expect: BTreeMap<NodeId, usize>,
    repair_verified: BTreeSet<NodeId>,
}

impl DynamicTriangleNode {
    fn new(id: NodeId, adjacency: Vec<NodeId>) -> Self {
        DynamicTriangleNode {
            id,
            adjacency,
            rm_rounds: 0,
            ins_rounds: 0,
            my_removes: Vec::new(),
            my_inserts: Vec::new(),
            bcast_removes: Vec::new(),
            bcast_inserts: Vec::new(),
            rm_queues: Vec::new(),
            ins_queues: Vec::new(),
            dead: Vec::new(),
            born: Vec::new(),
            aggregate: false,
            parent: None,
            child_count: 0,
            children_done: 0,
            child_streams: BTreeMap::new(),
            agg_dead: TriangleSet::new(),
            agg_born: TriangleSet::new(),
            up_chunks: None,
            protocol_error: None,
            hardened: false,
            pre_adjacency: Vec::new(),
            stream_bufs: BTreeMap::new(),
            verified_rm: BTreeSet::new(),
            verified_ins: BTreeSet::new(),
            deadline: 0,
            agg_trouble: false,
            repair_mode: false,
            repair_rounds: 0,
            repair_queues: Vec::new(),
            repair_expect: BTreeMap::new(),
            repair_verified: BTreeSet::new(),
        }
    }

    /// Rounds the self-checking trailer occupies at the end of every
    /// non-empty hardened broadcast phase (0 on a legacy engine).
    fn trailer_rounds(&self, bandwidth_bits: usize) -> u64 {
        if self.hardened {
            TRAILER_BITS.div_ceil(bandwidth_bits.max(1)) as u64
        } else {
            0
        }
    }

    /// Takes the candidate lists gathered during the last epoch.
    fn drain_candidates(&mut self) -> (Vec<Triangle>, Vec<Triangle>) {
        (
            std::mem::take(&mut self.dead),
            std::mem::take(&mut self.born),
        )
    }

    /// Takes the convergecast aggregates (meaningful on forest roots
    /// after an [`Aggregation::Convergecast`] epoch).
    fn take_aggregates(&mut self) -> (TriangleSet, TriangleSet) {
        (
            std::mem::take(&mut self.agg_dead),
            std::mem::take(&mut self.agg_born),
        )
    }

    /// Latches the first protocol violation of the epoch.
    fn record_protocol_error(&mut self, from: NodeId, detail: String) {
        if self.protocol_error.is_none() {
            self.protocol_error = Some(format!("from {from}: {detail}"));
        }
    }

    /// Whether `other` is currently in this node's slice.
    fn knows(&self, other: NodeId) -> bool {
        self.adjacency.binary_search(&other).is_ok()
    }

    /// How many edges fit in one message under the per-link budget.
    fn edges_per_message(bandwidth_bits: usize, id_width: usize) -> usize {
        (bandwidth_bits / (2 * id_width)).max(1)
    }

    /// Builds per-neighbour broadcast queues for `deltas` over the given
    /// neighbour list, skipping the other endpoint (it already knows),
    /// chunked so each round's message fits the budget.
    fn build_queues(neighbors: &[NodeId], deltas: &[Edge]) -> Vec<(NodeId, Vec<Edge>)> {
        if deltas.is_empty() {
            return Vec::new();
        }
        neighbors
            .iter()
            .filter_map(|&nb| {
                let q: Vec<Edge> = deltas.iter().copied().filter(|e| !e.contains(nb)).collect();
                (!q.is_empty()).then_some((nb, q))
            })
            .collect()
    }

    /// Decodes one node id, validating it against the network size `n`
    /// (so a corrupt payload surfaces a protocol error instead of
    /// silently truncating into the `u32` id space).
    fn decode_node(codec: IdCodec, r: &mut BitReader<'_>, n: usize) -> Result<NodeId, String> {
        let value = codec
            .decode(r)
            .map_err(|e| format!("undecodable node id: {e}"))?;
        if value >= n as u64 || value > u64::from(u32::MAX) {
            return Err(format!("node id {value} out of range for n = {n}"));
        }
        Ok(NodeId(value as u32))
    }

    /// Decodes one edge (two distinct, in-range ids).
    fn decode_edge(codec: IdCodec, r: &mut BitReader<'_>, n: usize) -> Result<Edge, String> {
        let a = Self::decode_node(codec, r, n)?;
        let b = Self::decode_node(codec, r, n)?;
        if a == b {
            return Err(format!("degenerate edge {{{a}, {b}}}"));
        }
        Ok(Edge::new(a, b))
    }

    /// Decodes the injected batch descriptor and prepares the epoch;
    /// resets all per-epoch state first so nothing leaks across epochs
    /// (the adjacency slice and its pre-batch snapshot are the only
    /// carry-overs — repair epochs still verify against them).
    fn load_descriptor(&mut self, ctx: &mut RoundContext<'_>) {
        self.rm_rounds = 0;
        self.ins_rounds = 0;
        self.my_removes.clear();
        self.my_inserts.clear();
        self.bcast_removes.clear();
        self.bcast_inserts.clear();
        self.rm_queues.clear();
        self.ins_queues.clear();
        self.aggregate = false;
        self.parent = None;
        self.child_count = 0;
        self.children_done = 0;
        self.child_streams.clear();
        self.agg_dead = TriangleSet::new();
        self.agg_born = TriangleSet::new();
        self.up_chunks = None;
        self.protocol_error = None;
        self.stream_bufs.clear();
        self.verified_rm.clear();
        self.verified_ins.clear();
        self.deadline = 0;
        self.agg_trouble = false;
        self.repair_mode = false;
        self.repair_rounds = 0;
        self.repair_queues.clear();
        self.repair_expect.clear();
        self.repair_verified.clear();
        let codec = ctx.id_codec().codec();
        let n = ctx.n();
        for m in ctx.take_inbox() {
            if let Err(detail) = self.parse_descriptor(codec, n, &m.payload) {
                self.record_protocol_error(m.from, detail);
            }
        }
        if self.repair_mode {
            // Repair epochs re-send previously-broadcast streams; the
            // queues came verbatim from the repair descriptor.
            return;
        }
        if self.hardened {
            self.pre_adjacency = self.adjacency.clone();
        }
        // Removal broadcasts go over the pre-batch neighbourhood.
        self.rm_queues = Self::build_queues(&self.adjacency, &self.bcast_removes);
    }

    /// Parses one descriptor payload, committing nothing on failure (a
    /// corrupt descriptor must not leave half-set phase lengths behind).
    fn parse_descriptor(
        &mut self,
        codec: IdCodec,
        n: usize,
        payload: &Payload,
    ) -> Result<(), String> {
        fn err<E: fmt::Display>(what: &'static str) -> impl FnOnce(E) -> String {
            move |e| format!("descriptor {what}: {e}")
        }
        let mut r = BitReader::new(payload);
        let mut sync = None;
        if self.hardened {
            if r.read_bool().map_err(err("kind"))? {
                return self.parse_repair(codec, n, &mut r);
            }
            if r.read_bool().map_err(err("sync flag"))? {
                let count = r.read_bits(COUNT_BITS).map_err(err("sync length"))?;
                let mut list = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    list.push(Self::decode_node(codec, &mut r, n)?);
                }
                sync = Some(list);
            }
        }
        let rm_rounds = r.read_bits(COUNT_BITS).map_err(err("rm_rounds"))?;
        let ins_rounds = r.read_bits(COUNT_BITS).map_err(err("ins_rounds"))?;
        let aggregate = r.read_bool().map_err(err("aggregation flag"))?;
        let mut parent = None;
        let mut child_count = 0usize;
        let mut deadline = 0u64;
        if aggregate {
            if r.read_bool().map_err(err("parent flag"))? {
                parent = Some(Self::decode_node(codec, &mut r, n)?);
            }
            child_count = r.read_bits(COUNT_BITS).map_err(err("child count"))? as usize;
            if self.hardened {
                deadline = r.read_bits(DEADLINE_BITS).map_err(err("deadline"))?;
            }
        }
        let mut lists: [(Vec<Edge>, Vec<Edge>); 2] = Default::default();
        for (all, bcast) in &mut lists {
            let count = r.read_bits(COUNT_BITS).map_err(err("list length"))?;
            for _ in 0..count {
                let e = Self::decode_edge(codec, &mut r, n)?;
                all.push(e);
                if r.read_bool().map_err(err("broadcast flag"))? {
                    bcast.push(e);
                }
            }
        }
        let [(rm_all, rm_bcast), (ins_all, ins_bcast)] = lists;
        if let Some(list) = sync {
            // Rejoin after a crash window: the coordinator re-seeds the
            // slice this node missed updates for while halted.
            self.adjacency = list;
        }
        self.rm_rounds = rm_rounds;
        self.ins_rounds = ins_rounds;
        self.aggregate = aggregate;
        self.parent = parent;
        self.child_count = child_count;
        self.deadline = deadline;
        self.my_removes = rm_all;
        self.bcast_removes = rm_bcast;
        self.my_inserts = ins_all;
        self.bcast_inserts = ins_bcast;
        Ok(())
    }

    /// Parses a repair descriptor (hardened engines only): the epoch
    /// length, the streams this node must re-send (removal edges lead
    /// each list), and the streams it should expect with their removal
    /// prefix lengths.
    fn parse_repair(
        &mut self,
        codec: IdCodec,
        n: usize,
        r: &mut BitReader<'_>,
    ) -> Result<(), String> {
        fn err<E: fmt::Display>(what: &'static str) -> impl FnOnce(E) -> String {
            move |e| format!("repair descriptor {what}: {e}")
        }
        let rounds = r.read_bits(COUNT_BITS).map_err(err("rounds"))?;
        let target_count = r.read_bits(COUNT_BITS).map_err(err("target count"))?;
        let mut queues = Vec::with_capacity(target_count as usize);
        for _ in 0..target_count {
            let to = Self::decode_node(codec, r, n)?;
            let count = r.read_bits(COUNT_BITS).map_err(err("edge count"))?;
            let mut edges = Vec::with_capacity(count as usize);
            for _ in 0..count {
                edges.push(Self::decode_edge(codec, r, n)?);
            }
            queues.push((to, edges));
        }
        let expect_count = r.read_bits(COUNT_BITS).map_err(err("expect count"))?;
        let mut expect = BTreeMap::new();
        for _ in 0..expect_count {
            let from = Self::decode_node(codec, r, n)?;
            let rm_len = r.read_bits(COUNT_BITS).map_err(err("removal prefix"))? as usize;
            expect.insert(from, rm_len);
        }
        self.repair_mode = true;
        self.repair_rounds = rounds;
        self.repair_queues = queues;
        self.repair_expect = expect;
        Ok(())
    }

    /// Applies this node's own effective deltas to its slice (the phase
    /// boundary), then prepares insertion broadcasts over the post-batch
    /// neighbourhood.
    fn apply_local(&mut self) {
        for e in &self.my_removes {
            if let Some(other) = e.other(self.id) {
                sorted_remove(&mut self.adjacency, other);
            }
        }
        for e in &self.my_inserts {
            if let Some(other) = e.other(self.id) {
                sorted_insert(&mut self.adjacency, other);
            }
        }
        self.ins_queues = Self::build_queues(&self.adjacency, &self.bcast_inserts);
    }

    /// Sends this round's chunk of every per-neighbour queue.
    fn send_wave(
        ctx: &mut RoundContext<'_>,
        queues: &[(NodeId, Vec<Edge>)],
        wave: usize,
        per_message: usize,
    ) {
        let codec = ctx.id_codec().codec();
        for (nb, q) in queues {
            let chunk = q
                .iter()
                .skip(wave * per_message)
                .take(per_message)
                .collect::<Vec<_>>();
            if chunk.is_empty() {
                continue;
            }
            let mut w = BitWriter::new();
            for e in chunk {
                codec.encode(&mut w, e.lo().as_u64());
                codec.encode(&mut w, e.hi().as_u64());
            }
            ctx.send(*nb, w.finish())
                .expect("one in-budget message per link per round");
        }
    }

    /// Sends this round's chunk of every non-empty queue's trailer
    /// (`[edge count | Checksum61]`, split to the link budget). The
    /// trailer occupies the phase's last [`trailer_rounds`] rounds, so
    /// receivers can tell data chunks from trailer chunks by round
    /// alone.
    ///
    /// [`trailer_rounds`]: DynamicTriangleNode::trailer_rounds
    fn send_trailer_wave(
        ctx: &mut RoundContext<'_>,
        queues: &[(NodeId, Vec<Edge>)],
        chunk: usize,
        bandwidth_bits: usize,
    ) {
        for (nb, q) in queues {
            let mut w = BitWriter::new();
            w.write_bits(q.len() as u64, COUNT_BITS);
            w.write_bits(edge_checksum(q), CHECKSUM_BITS);
            let trailer = w.finish();
            let lo = chunk * bandwidth_bits;
            if lo >= trailer.bit_len() {
                continue;
            }
            let take = bandwidth_bits.min(trailer.bit_len() - lo);
            let mut r = BitReader::new(&trailer);
            let mut skip = lo;
            while skip > 0 {
                let step = skip.min(64);
                r.read_bits(step).expect("offset within trailer");
                skip -= step;
            }
            let mut out = BitWriter::new();
            copy_bits(&mut r, &mut out, take);
            ctx.send(*nb, out.finish())
                .expect("trailer chunks fit the link budget");
        }
    }

    /// Verifies every buffered stream of one broadcast phase against
    /// its trailer: the trailer must be exactly [`TRAILER_BITS`], its
    /// count must match the received edges and its checksum must match
    /// their fold. Verified streams convert to candidates exactly like
    /// legacy deliveries; anything else is silently set aside for the
    /// coordinator, which compares the verified-sender sets against its
    /// own expectations and schedules retransmission.
    fn verify_streams(&mut self, ins_phase: bool) {
        let senders: Vec<NodeId> = self
            .stream_bufs
            .keys()
            .filter(|k| k.0 == ins_phase)
            .map(|k| k.1)
            .collect();
        for from in senders {
            let buf = self
                .stream_bufs
                .remove(&(ins_phase, from))
                .expect("key was just listed");
            if !Self::stream_verifies(&buf) {
                continue;
            }
            self.convert_candidates(&buf.edges, ins_phase, false);
            if ins_phase {
                self.verified_ins.insert(from);
            } else {
                self.verified_rm.insert(from);
            }
        }
    }

    /// Whether one buffered stream's trailer checks out.
    fn stream_verifies(buf: &StreamBuf) -> bool {
        let trailer = buf.trailer.clone().finish();
        if buf.corrupt || trailer.bit_len() != TRAILER_BITS {
            return false;
        }
        let mut r = BitReader::new(&trailer);
        let count = r.read_bits(COUNT_BITS).expect("length-checked");
        let checksum = r.read_bits(CHECKSUM_BITS).expect("length-checked");
        count == buf.edges.len() as u64 && checksum == edge_checksum(&buf.edges)
    }

    /// Converts a verified stream's edges into candidate triangles.
    /// `against_pre` checks membership on the pre-batch snapshot —
    /// retransmitted removal streams arrive after the local boundary
    /// already switched the slice to the post-batch graph.
    fn convert_candidates(&mut self, edges: &[Edge], ins_phase: bool, against_pre: bool) {
        for e in edges {
            if e.contains(self.id) {
                continue;
            }
            let (u, v) = e.endpoints();
            let known = if against_pre {
                self.pre_adjacency.binary_search(&u).is_ok()
                    && self.pre_adjacency.binary_search(&v).is_ok()
            } else {
                self.knows(u) && self.knows(v)
            };
            if known {
                let t = Triangle::new(u, v, self.id);
                if ins_phase {
                    self.born.push(t);
                } else {
                    self.dead.push(t);
                }
            }
        }
    }

    /// Verifies the streams received during a repair epoch. Each
    /// verified stream's removal prefix (length from the repair
    /// descriptor) converts against the pre-batch snapshot, the rest
    /// against the live post-batch slice.
    fn verify_repair_streams(&mut self) {
        let senders: Vec<NodeId> = self.stream_bufs.keys().map(|k| k.1).collect();
        for from in senders {
            let buf = self
                .stream_bufs
                .remove(&(false, from))
                .expect("repair streams buffer under the removal key");
            let Some(&rm_len) = self.repair_expect.get(&from) else {
                continue;
            };
            if !Self::stream_verifies(&buf) {
                continue;
            }
            let rm_len = rm_len.min(buf.edges.len());
            self.convert_candidates(&buf.edges[..rm_len], false, true);
            self.convert_candidates(&buf.edges[rm_len..], true, false);
            self.repair_verified.insert(from);
        }
    }

    /// Decodes the edges packed into a broadcast message, rejecting
    /// payloads that are not an exact sequence of in-range edges.
    fn decode_edges(codec: IdCodec, payload: &Payload, n: usize) -> Result<Vec<Edge>, String> {
        let mut out = Vec::new();
        let mut r = BitReader::new(payload);
        let pair = 2 * codec.width();
        let mut remaining = payload.bit_len();
        while remaining >= pair {
            out.push(Self::decode_edge(codec, &mut r, n)?);
            remaining -= pair;
        }
        if remaining != 0 {
            return Err(format!(
                "broadcast payload has {remaining} trailing bits (not a whole edge)"
            ));
        }
        Ok(out)
    }

    /// Serializes the merged candidate aggregate for the upward
    /// convergecast leg. Empty aggregates serialize to the empty stream
    /// (one 1-bit chunk), so quiet subtrees cost almost nothing. A
    /// hardened stream always carries its counts plus a closing
    /// [`Checksum61`] so receivers can reject corrupted reassemblies.
    fn serialize_aggregate(
        codec: IdCodec,
        dead: &TriangleSet,
        born: &TriangleSet,
        checked: bool,
    ) -> Payload {
        if !checked && dead.is_empty() && born.is_empty() {
            return Payload::new();
        }
        let mut w = BitWriter::new();
        let mut cs = Checksum61::new();
        for set in [dead, born] {
            w.write_bits(set.len() as u64, COUNT_BITS);
            for t in set.iter() {
                for v in t.nodes() {
                    codec.encode(&mut w, v.as_u64());
                    cs.update(v.as_u64());
                }
            }
        }
        if checked {
            w.write_bits(cs.value(), CHECKSUM_BITS);
        }
        w.finish()
    }

    /// Decodes a reassembled convergecast stream back into candidate
    /// lists, validating counts, ids and triangle well-formedness.
    fn decode_aggregate(
        codec: IdCodec,
        n: usize,
        stream: &Payload,
        checked: bool,
    ) -> Result<(Vec<Triangle>, Vec<Triangle>), String> {
        if stream.bit_len() == 0 {
            if checked {
                return Err("aggregate stream is missing its checksum".into());
            }
            return Ok((Vec::new(), Vec::new()));
        }
        let mut r = BitReader::new(stream);
        let mut dead = Vec::new();
        let mut born = Vec::new();
        let mut cs = Checksum61::new();
        for list in [&mut dead, &mut born] {
            let count = r
                .read_bits(COUNT_BITS)
                .map_err(|e| format!("aggregate count: {e}"))?;
            for _ in 0..count {
                let a = Self::decode_node(codec, &mut r, n)?;
                let b = Self::decode_node(codec, &mut r, n)?;
                let c = Self::decode_node(codec, &mut r, n)?;
                if a == b || b == c || a == c {
                    return Err(format!("degenerate triangle {{{a}, {b}, {c}}}"));
                }
                for v in [a, b, c] {
                    cs.update(v.as_u64());
                }
                list.push(Triangle::new(a, b, c));
            }
        }
        if checked {
            let expect = r
                .read_bits(CHECKSUM_BITS)
                .map_err(|e| format!("aggregate checksum: {e}"))?;
            if expect != cs.value() {
                return Err("aggregate checksum mismatch".into());
            }
        }
        if !r.is_exhausted() {
            return Err(format!(
                "aggregate stream has {} trailing bits",
                r.remaining()
            ));
        }
        Ok((dead, born))
    }

    /// Splits a serialized aggregate into link-budget-sized chunk
    /// messages, each `[more-flag | ≤ B−1 data bits]`. The empty stream
    /// becomes a single flag-only chunk — the cheapest possible "my
    /// subtree saw nothing".
    fn chunk_stream(stream: &Payload, bandwidth_bits: usize) -> VecDeque<Payload> {
        let per_chunk = bandwidth_bits.saturating_sub(1).max(1);
        let total = stream.bit_len();
        let mut reader = BitReader::new(stream);
        let mut chunks = VecDeque::new();
        let mut offset = 0;
        loop {
            let take = per_chunk.min(total - offset);
            let mut w = BitWriter::new();
            w.write_bool(offset + take < total);
            copy_bits(&mut reader, &mut w, take);
            chunks.push_back(w.finish());
            offset += take;
            if offset >= total {
                return chunks;
            }
        }
    }

    /// Absorbs one convergecast chunk from a child; on the final chunk
    /// the reassembled stream is decoded and dedup-merged into this
    /// node's aggregates through the shared `shard.rs` merge core.
    fn receive_chunk(&mut self, codec: IdCodec, n: usize, m: &ReceivedMessage) {
        let mut r = BitReader::new(&m.payload);
        let more = match r.read_bool() {
            Ok(more) => more,
            Err(e) => {
                if self.hardened {
                    // A hardened receiver degrades instead of erroring:
                    // the coordinator re-reads the subtree directly.
                    self.agg_trouble = true;
                } else {
                    self.record_protocol_error(m.from, format!("empty convergecast chunk: {e}"));
                }
                // Count the stream as finished so the epoch still
                // terminates; the error surfaces after it.
                self.children_done += 1;
                return;
            }
        };
        let buf = self.child_streams.entry(m.from).or_default();
        copy_bits(&mut r, buf, m.payload.bit_len() - 1);
        if more {
            return;
        }
        let stream = self
            .child_streams
            .remove(&m.from)
            .expect("buffer was just written")
            .finish();
        match Self::decode_aggregate(codec, n, &stream, self.hardened) {
            Ok((dead, born)) => {
                merge_added_candidates(&mut self.agg_dead, &dead);
                merge_added_candidates(&mut self.agg_born, &born);
            }
            Err(detail) => {
                if self.hardened {
                    self.agg_trouble = true;
                } else {
                    self.record_protocol_error(m.from, detail);
                }
            }
        }
        self.children_done += 1;
    }
}

impl NodeProgram for DynamicTriangleNode {
    type Output = ();

    fn on_round(&mut self, ctx: &mut RoundContext<'_>) -> NodeStatus {
        let r = ctx.round();
        let codec = ctx.id_codec().codec();
        let n = ctx.n();
        let bandwidth_bits = ctx.bandwidth_bits();
        let per_message = Self::edges_per_message(bandwidth_bits, codec.width());
        let trailer = self.trailer_rounds(bandwidth_bits);

        if r == 0 {
            self.load_descriptor(ctx);
        } else if self.repair_mode {
            // Repair deliveries: data chunks first, then the trailer in
            // the phase's final rounds. Everything buffers; nothing is
            // trusted until `verify_repair_streams` at the end.
            let data_end = self.repair_rounds.saturating_sub(trailer);
            for m in ctx.take_inbox() {
                let buf = self.stream_bufs.entry((false, m.from)).or_default();
                if r <= data_end {
                    match Self::decode_edges(codec, &m.payload, n) {
                        Ok(edges) => buf.edges.extend(edges),
                        Err(_) => buf.corrupt = true,
                    }
                } else {
                    let mut reader = BitReader::new(&m.payload);
                    copy_bits(&mut reader, &mut buf.trailer, m.payload.bit_len());
                }
            }
        } else if self.hardened {
            // Hardened inbox: broadcast deliveries buffer per sender and
            // per phase instead of converting immediately; a chunk that
            // fails to decode poisons the buffer rather than the epoch.
            // Conversion happens at the phase boundaries below, only for
            // streams whose trailer verifies.
            let broadcast_end = self.rm_rounds + self.ins_rounds;
            for m in ctx.take_inbox() {
                if r > broadcast_end {
                    self.receive_chunk(codec, n, &m);
                    continue;
                }
                let (ins_phase, pr, phase_len) = if r <= self.rm_rounds {
                    (false, r, self.rm_rounds)
                } else {
                    (true, r - self.rm_rounds, self.ins_rounds)
                };
                let buf = self.stream_bufs.entry((ins_phase, m.from)).or_default();
                if pr <= phase_len.saturating_sub(trailer) {
                    match Self::decode_edges(codec, &m.payload, n) {
                        Ok(edges) => buf.edges.extend(edges),
                        Err(_) => buf.corrupt = true,
                    }
                } else {
                    let mut reader = BitReader::new(&m.payload);
                    copy_bits(&mut reader, &mut buf.trailer, m.payload.bit_len());
                }
            }
        } else {
            let broadcast_end = self.rm_rounds + self.ins_rounds;
            // Deliveries from rounds `1..=rm_rounds` are removal
            // broadcasts, checked against the *pre-batch* slice (our own
            // mutations apply at the boundary below, after receiving);
            // deliveries up to `broadcast_end` are insertions, checked
            // post-batch; anything later is a convergecast chunk from a
            // child in the BFS forest.
            let removal_phase = r <= self.rm_rounds;
            for m in ctx.take_inbox() {
                if r > broadcast_end {
                    self.receive_chunk(codec, n, &m);
                    continue;
                }
                let edges = match Self::decode_edges(codec, &m.payload, n) {
                    Ok(edges) => edges,
                    Err(detail) => {
                        self.record_protocol_error(m.from, detail);
                        continue;
                    }
                };
                for e in edges {
                    if e.contains(self.id) {
                        continue;
                    }
                    let (u, v) = e.endpoints();
                    if self.knows(u) && self.knows(v) {
                        let t = Triangle::new(u, v, self.id);
                        if removal_phase {
                            self.dead.push(t);
                        } else {
                            self.born.push(t);
                        }
                    }
                }
            }
        }

        // Repair epochs are a pure re-broadcast: send the scheduled
        // streams (data waves, then the trailer), verify at the end,
        // halt. No local state changes — the batch already applied.
        if self.repair_mode {
            if r >= self.repair_rounds {
                self.verify_repair_streams();
                return NodeStatus::Halted;
            }
            let data_rounds = self.repair_rounds - trailer;
            if r < data_rounds {
                Self::send_wave(ctx, &self.repair_queues, r as usize, per_message);
            } else {
                Self::send_trailer_wave(
                    ctx,
                    &self.repair_queues,
                    (r - data_rounds) as usize,
                    bandwidth_bits,
                );
            }
            return NodeStatus::Active;
        }

        // Hardened phase boundaries: verify the buffered removal streams
        // against the still-pre-batch slice, insertion streams against
        // the post-batch slice (apply_local has run by then).
        if self.hardened && r > 0 {
            if r == self.rm_rounds && self.rm_rounds > 0 {
                self.verify_streams(false);
            }
            if r == self.rm_rounds + self.ins_rounds && self.ins_rounds > 0 {
                self.verify_streams(true);
            }
        }

        // Phase boundary: the removal broadcasts are all delivered, so
        // the node switches its slice to the post-batch graph.
        if r == self.rm_rounds {
            self.apply_local();
        }

        if r < self.rm_rounds {
            let data_rounds = self.rm_rounds - trailer;
            if r < data_rounds {
                Self::send_wave(ctx, &self.rm_queues, r as usize, per_message);
            } else {
                Self::send_trailer_wave(
                    ctx,
                    &self.rm_queues,
                    (r - data_rounds) as usize,
                    bandwidth_bits,
                );
            }
            return NodeStatus::Active;
        }
        if r < self.rm_rounds + self.ins_rounds {
            let wave = r - self.rm_rounds;
            let data_rounds = self.ins_rounds - trailer;
            if wave < data_rounds {
                Self::send_wave(ctx, &self.ins_queues, wave as usize, per_message);
            } else {
                Self::send_trailer_wave(
                    ctx,
                    &self.ins_queues,
                    (wave - data_rounds) as usize,
                    bandwidth_bits,
                );
            }
            return NodeStatus::Active;
        }

        // Broadcast phases are over. Under free aggregation the epoch
        // ends here; under convergecast the node first folds its own
        // observations into the aggregate, then — once every child
        // stream has been absorbed — streams the merged sets to its
        // parent, one in-budget chunk per round. Forest roots keep the
        // result for the coordinator instead.
        if !self.aggregate {
            return NodeStatus::Halted;
        }
        if r == self.rm_rounds + self.ins_rounds {
            let (dead, born) = self.drain_candidates();
            merge_added_candidates(&mut self.agg_dead, &dead);
            merge_added_candidates(&mut self.agg_born, &born);
        }
        if self.children_done < self.child_count {
            if self.hardened && r >= self.deadline {
                // A child stream is overdue (lost chunks); give up on it
                // and forward a partial aggregate so the epoch
                // terminates. The coordinator re-reads every node's
                // aggregates directly on a hardened engine, so nothing
                // verified is lost — only network-side merging.
                self.agg_trouble = true;
                self.children_done = self.child_count;
                self.child_streams.clear();
            } else {
                return NodeStatus::Active;
            }
        }
        let Some(parent) = self.parent else {
            return NodeStatus::Halted;
        };
        if self.up_chunks.is_none() {
            let stream =
                Self::serialize_aggregate(codec, &self.agg_dead, &self.agg_born, self.hardened);
            self.up_chunks = Some(Self::chunk_stream(&stream, bandwidth_bits));
        }
        let chunks = self.up_chunks.as_mut().expect("chunks were just built");
        let chunk = chunks
            .pop_front()
            .expect("chunking never yields zero chunks");
        let done = chunks.is_empty();
        ctx.send(parent, chunk)
            .expect("convergecast chunks fit the link budget");
        if done {
            NodeStatus::Halted
        } else {
            NodeStatus::Active
        }
    }

    fn finish(&mut self) {}
}

/// Distributed dynamic triangle engine over `congest-sim` epochs.
///
/// Same [`StreamEngine`](crate::StreamEngine) contract as the
/// centralized engines — after any sequence of applied batches the live
/// triangle set equals a from-scratch recount on the engine's own
/// [`AdjacencyView`] — but every batch is executed by the simulated
/// CONGEST network itself, and the engine additionally reports the
/// network cost ([`CongestCost`]) each batch incurred. The module-level
/// documentation in `distributed.rs` walks through the protocol.
///
/// ```
/// use congest_graph::generators::Gnp;
/// use congest_graph::triangles as oracle;
/// use congest_stream::{DeltaBatch, DistributedTriangleEngine};
///
/// let graph = Gnp::new(64, 0.1).seeded(1).generate();
/// let mut engine = DistributedTriangleEngine::from_graph(&graph);
///
/// let mut batch = DeltaBatch::new();
/// batch.insert(congest_graph::NodeId(0), congest_graph::NodeId(1));
/// engine.apply(&batch).unwrap();
///
/// // The live set equals a snapshot-free recount on the engine…
/// assert_eq!(engine.triangles(), &oracle::list_all_on(&engine));
/// // …and the batch took a handful of network rounds, not a re-run.
/// assert!(engine.last_batch_cost().rounds >= 1);
/// ```
pub struct DistributedTriangleEngine {
    sim: EpochEngine,
    /// The global triangle set (the coordinator's merge is the only
    /// writer).
    triangles: TriangleSet,
    /// Number of present undirected edges.
    edge_count: usize,
    mode: ApplyMode,
    /// Deferred-mode buffer (concatenated batches + staleness clock).
    pending: PendingBuffer,
    /// Per-link per-round budget, in bits.
    bandwidth_bits: usize,
    /// Broadcast scheduling policy (helper-split hub broadcasts).
    hub_split: HubSplit,
    /// How candidate sets reach the coordinator after the broadcasts.
    aggregation: Aggregation,
    /// Cost of the most recent epoch.
    last_batch: CongestCost,
    /// Running total over all epochs.
    total: CongestCost,
    /// Number of epochs (batches that actually ran the network).
    epochs: u64,
    /// Worst single-epoch received-bits skew (max node over mean node).
    skew_max: f64,
    /// Sum of per-epoch skews (mean = sum / epochs).
    skew_sum: f64,
    /// The deterministic fault schedule in effect (quiet by default; a
    /// non-quiet plan hardens the protocol — see [`with_fault_plan`]).
    ///
    /// [`with_fault_plan`]: DistributedTriangleEngine::with_fault_plan
    fault_plan: FaultPlan,
    /// Shadow adjacency of currently-crashed nodes: their in-network
    /// slices go stale while they sit out epochs, so the coordinator
    /// keeps the true list here (advanced every batch) and re-seeds the
    /// node from it when it rejoins.
    offline: BTreeMap<NodeId, Vec<NodeId>>,
    /// Cumulative self-healing statistics (see [`RecoveryStats`]).
    recovery: RecoveryStats,
}

/// Cumulative self-healing statistics of a hardened
/// [`DistributedTriangleEngine`] (all zero on a quiet plan).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Network rounds spent in retransmission (repair) epochs.
    pub retransmit_rounds: u64,
    /// Repair epochs executed.
    pub epoch_repairs: u64,
    /// Epochs that needed any degradation to central recomputation
    /// (crashed nodes, uncovered deltas, or abandoned convergecast
    /// streams) — the batches whose cost accounting is best-effort.
    pub degraded_epochs: u64,
}

/// The coordinator-computed BFS forest of one epoch's union topology:
/// convergecast parents, per-node child counts, and one root per
/// connected component (whose aggregates the coordinator reads).
struct BfsForest {
    parent: Vec<Option<NodeId>>,
    children: Vec<usize>,
    roots: Vec<NodeId>,
    /// Subtree height per node (leaves 0), used to derive per-node
    /// convergecast deadlines on hardened engines.
    height: Vec<u64>,
}

/// One broadcast stream that failed verification at its receiver and
/// awaits retransmission: the removal-phase and insertion-phase edges
/// of one (sender, receiver) pair, re-sent as a single repair stream
/// (removals lead).
#[derive(Default)]
struct PendingStream {
    rm: Vec<Edge>,
    ins: Vec<Edge>,
}

impl DistributedTriangleEngine {
    /// An empty engine on `node_count` nodes, in [`ApplyMode::Eager`],
    /// with the default CONGEST bandwidth and the sequential executor.
    pub fn new(node_count: usize) -> Self {
        Self::with_bandwidth(node_count, Bandwidth::default())
    }

    /// An empty engine with an explicit epoch executor (see
    /// [`SimExecutor`]; results are identical either way).
    pub fn with_executor(node_count: usize, executor: SimExecutor) -> Self {
        let empty = congest_graph::GraphBuilder::new(node_count).build();
        Self::build(&empty, Bandwidth::default(), executor)
    }

    /// An empty engine with an explicit per-link bandwidth budget.
    ///
    /// # Panics
    ///
    /// Panics if the budget cannot carry a single edge (two node ids),
    /// i.e. is below `2·⌈log2 n⌉` bits — the broadcasts' smallest
    /// message under the CONGEST convention.
    pub fn with_bandwidth(node_count: usize, bandwidth: Bandwidth) -> Self {
        let empty = congest_graph::GraphBuilder::new(node_count).build();
        Self::build(&empty, bandwidth, SimExecutor::Sequential)
    }

    /// An engine seeded with a static graph's edges and triangles (the
    /// triangles are computed once with the centralized reference
    /// listing, exactly like the other engines' `from_graph`).
    pub fn from_graph(graph: &Graph) -> Self {
        Self::from_graph_with_bandwidth(graph, Bandwidth::default())
    }

    /// [`from_graph`](DistributedTriangleEngine::from_graph) with an
    /// explicit epoch executor: [`SimExecutor::Threaded`] runs every
    /// batch epoch thread-per-node on `ThreadedSimulation`'s identical
    /// epoch API (bit-identical results, property-tested against the
    /// sequential engine and the oracle).
    pub fn from_graph_with_executor(graph: &Graph, executor: SimExecutor) -> Self {
        let mut engine = Self::build(graph, Bandwidth::default(), executor);
        engine.triangles = congest_graph::triangles::list_all(graph);
        engine.edge_count = graph.edge_count();
        engine
    }

    /// [`from_graph`](DistributedTriangleEngine::from_graph) with an
    /// explicit per-link bandwidth budget.
    ///
    /// # Panics
    ///
    /// Panics if the budget cannot carry a single edge (see
    /// [`with_bandwidth`](DistributedTriangleEngine::with_bandwidth)).
    pub fn from_graph_with_bandwidth(graph: &Graph, bandwidth: Bandwidth) -> Self {
        let mut engine = Self::build(graph, bandwidth, SimExecutor::Sequential);
        engine.triangles = congest_graph::triangles::list_all(graph);
        engine.edge_count = graph.edge_count();
        engine
    }

    fn build(graph: &Graph, bandwidth: Bandwidth, executor: SimExecutor) -> Self {
        let config = SimConfig::congest(0).with_bandwidth(bandwidth);
        let bandwidth_bits = bandwidth.bits_per_round(graph.node_count().max(1));
        // The protocol's smallest message is one edge (two ids); a budget
        // below that would make every broadcast an in-epoch send error,
        // so reject it up front with a clear message instead.
        if graph.node_count() >= 2 {
            let min_bits = 2 * IdCodec::new(graph.node_count() as u64).width();
            assert!(
                bandwidth_bits >= min_bits,
                "bandwidth budget of {bandwidth_bits} bits cannot carry one edge \
                 (two ids of {min_bits} bits total) for n = {}; the CONGEST \
                 convention needs at least 2·⌈log2 n⌉ bits per message",
                graph.node_count(),
            );
        }
        let sim = EpochEngine::new(graph, config, executor);
        DistributedTriangleEngine {
            sim,
            triangles: TriangleSet::new(),
            edge_count: 0,
            mode: ApplyMode::Eager,
            pending: PendingBuffer::default(),
            bandwidth_bits,
            hub_split: HubSplit::default(),
            aggregation: Aggregation::default(),
            last_batch: CongestCost::default(),
            total: CongestCost::default(),
            epochs: 0,
            skew_max: 0.0,
            skew_sum: 0.0,
            fault_plan: FaultPlan::default(),
            offline: BTreeMap::new(),
            recovery: RecoveryStats::default(),
        }
    }

    /// Sets the application mode (builder style). Switching away from
    /// deferred mode first flushes anything buffered.
    pub fn with_mode(mut self, mode: ApplyMode) -> Self {
        if mode != self.mode && !self.pending.is_empty() {
            self.flush();
        }
        self.mode = mode;
        self
    }

    /// Sets the broadcast scheduling policy (builder style; see
    /// [`HubSplit`]). Every policy produces the identical triangle sets
    /// — only the epoch round/message schedule changes.
    pub fn with_hub_split(mut self, hub_split: HubSplit) -> Self {
        self.hub_split = hub_split;
        self
    }

    /// Sets the candidate aggregation mode (builder style; see
    /// [`Aggregation`]). Both modes produce the identical triangle sets
    /// — [`Aggregation::Free`] merely stops charging the network for
    /// the merge.
    pub fn with_aggregation(mut self, aggregation: Aggregation) -> Self {
        self.aggregation = aggregation;
        self
    }

    /// Sets the deterministic fault schedule (builder style). A
    /// non-quiet plan **hardens** the protocol: every broadcast and
    /// convergecast stream carries a length + [`Checksum61`] trailer,
    /// receivers buffer-and-verify instead of trusting deliveries, lost
    /// or corrupted streams are retransmitted in accounted repair
    /// epochs ([`CongestCost::recovery_rounds`]), and scheduled crash
    /// windows degrade to coordinator-side recomputation with a state
    /// sync on rejoin. A quiet plan (the default) leaves every code
    /// path — and every cost metric — bit-identical to the legacy
    /// engine.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = plan;
        self.sim.set_fault_plan(plan);
        let hardened = !plan.is_quiet();
        for i in 0..self.node_count() {
            self.sim.program_mut(NodeId::from_index(i)).hardened = hardened;
        }
        self
    }

    /// Overrides the per-epoch round cap (builder style). An epoch that
    /// exhausts it surfaces as [`StreamError::RoundLimit`] from
    /// [`apply`](DistributedTriangleEngine::apply).
    pub fn with_max_rounds(mut self, max_rounds: u64) -> Self {
        self.sim.set_max_rounds(max_rounds);
        self
    }

    /// The fault schedule in effect.
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.fault_plan
    }

    /// Whether the engine runs the hardened (self-checking) protocol,
    /// i.e. whether the fault plan is non-quiet.
    pub fn hardened(&self) -> bool {
        !self.fault_plan.is_quiet()
    }

    /// Cumulative self-healing statistics (all zero on a quiet plan).
    pub fn recovery_stats(&self) -> RecoveryStats {
        self.recovery
    }

    /// The true current neighbour list of `node`: the in-network slice,
    /// or the coordinator's shadow copy while the node is crashed (its
    /// slice goes stale until the rejoin sync).
    fn adjacency_of(&self, node: NodeId) -> &[NodeId] {
        match self.offline.get(&node) {
            Some(list) => list,
            None => &self.sim.program(node).adjacency,
        }
    }

    /// The application mode in effect.
    pub fn mode(&self) -> ApplyMode {
        self.mode
    }

    /// The broadcast scheduling policy in effect.
    pub fn hub_split(&self) -> HubSplit {
        self.hub_split
    }

    /// The candidate aggregation mode in effect.
    pub fn aggregation(&self) -> Aggregation {
        self.aggregation
    }

    /// The epoch executor driving the simulated network.
    pub fn executor(&self) -> SimExecutor {
        self.sim.executor()
    }

    /// Number of nodes (network and graph — they are the same thing
    /// here).
    pub fn node_count(&self) -> usize {
        self.sim.node_count()
    }

    /// Number of present undirected edges (excluding pending deltas).
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Sorted neighbour list of `node`, read from the owning network
    /// node's slice (or the coordinator's shadow copy while the node
    /// is crashed).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn neighbors(&self, node: NodeId) -> &[NodeId] {
        self.adjacency_of(node)
    }

    /// Current degree of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn degree(&self, node: NodeId) -> usize {
        self.neighbors(node).len()
    }

    /// Whether `{a, b}` is currently an edge (excluding pending deltas).
    pub fn has_edge(&self, a: NodeId, b: NodeId) -> bool {
        if a == b || a.index() >= self.node_count() || b.index() >= self.node_count() {
            return false;
        }
        let (from, to) = if self.degree(a) <= self.degree(b) {
            (a, b)
        } else {
            (b, a)
        };
        self.neighbors(from).binary_search(&to).is_ok()
    }

    /// The live triangle set (in deferred mode this reflects only
    /// flushed batches).
    pub fn triangles(&self) -> &TriangleSet {
        &self.triangles
    }

    /// Number of live triangles.
    pub fn triangle_count(&self) -> usize {
        self.triangles.len()
    }

    /// Deltas buffered by deferred mode and not yet flushed.
    pub fn pending_deltas(&self) -> usize {
        self.pending.len()
    }

    /// How long the oldest buffered delta has been waiting (`None` while
    /// nothing is pending).
    pub fn pending_age(&self) -> Option<Duration> {
        self.pending.age()
    }

    /// CONGEST cost of the most recent batch epoch (zero before the
    /// first, and unchanged by batches that coalesce to nothing).
    pub fn last_batch_cost(&self) -> CongestCost {
        self.last_batch
    }

    /// Cumulative CONGEST cost over every epoch so far.
    pub fn total_cost(&self) -> CongestCost {
        self.total
    }

    /// Number of epochs the network has executed (batches that had at
    /// least one effective delta).
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// Received-bits skew statistics over every epoch so far (`None`
    /// before the first epoch). See [`ReceivedBitsSkew`].
    pub fn received_bits_skew(&self) -> Option<ReceivedBitsSkew> {
        (self.epochs > 0).then(|| ReceivedBitsSkew {
            max_ratio: self.skew_max,
            mean_ratio: self.skew_sum / self.epochs as f64,
            epochs: self.epochs,
        })
    }

    /// Applies a batch according to the [`ApplyMode`] (same contract as
    /// the centralized engines).
    ///
    /// # Errors
    ///
    /// * [`StreamError::NodeOutOfRange`] if any delta references a node
    ///   outside the graph; the batch is then applied not at all.
    /// * [`StreamError::Protocol`] if a network node received a payload
    ///   it could not decode (corrupt injected traffic — the engine's
    ///   own broadcasts never produce this); the engine should be
    ///   considered unusable afterwards.
    pub fn apply(&mut self, batch: &DeltaBatch) -> Result<ApplyReport, StreamError> {
        validate_batch(batch, self.node_count())?;
        match self.mode {
            ApplyMode::Eager => self.process_batch(batch),
            ApplyMode::Deferred => {
                self.pending.buffer(batch);
                Ok(ApplyReport {
                    deltas_seen: batch.len(),
                    deltas_deferred: batch.len(),
                    ..ApplyReport::default()
                })
            }
        }
    }

    /// Coalesces and applies every buffered batch as a single epoch
    /// (no-op in eager mode or with nothing pending); same accounting as
    /// the centralized engines' `flush`.
    ///
    /// # Panics
    ///
    /// Panics if the epoch surfaces a broadcast protocol error, which
    /// cannot happen with payloads produced by this engine (the trait's
    /// `flush` has no error channel; `apply` returns
    /// [`StreamError::Protocol`] instead).
    pub fn flush(&mut self) -> ApplyReport {
        if self.pending.is_empty() {
            return ApplyReport::default();
        }
        let buffered = self.pending.take();
        let mut report = self
            .process_batch(&buffered)
            .unwrap_or_else(|e| panic!("deferred flush hit a protocol error: {e}"));
        report.deltas_seen = 0;
        report
    }

    /// Whether the live triangle set exactly equals a snapshot-free
    /// from-scratch recount on the engine's own adjacency view.
    pub fn matches_oracle(&self) -> bool {
        self.triangles == congest_graph::triangles::list_all_on(self)
    }

    /// The per-node per-phase broadcast budget, in deltas: `None` under
    /// [`HubSplit::Off`], the mean incident load of the phase's touched
    /// nodes under [`HubSplit::Auto`], the explicit value (clamped to
    /// ≥ 1) under [`HubSplit::Budget`].
    fn phase_budget(&self, lists: &BTreeMap<NodeId, Vec<Edge>>) -> Option<usize> {
        if lists.is_empty() {
            return None;
        }
        match self.hub_split {
            HubSplit::Off => None,
            HubSplit::Auto => {
                let entries: usize = lists.values().map(Vec::len).sum();
                Some(entries.div_ceil(lists.len()).max(1))
            }
            HubSplit::Budget(budget) => Some(budget.max(1)),
        }
    }

    /// Helper-split scheduling for one phase: every node over `budget`
    /// sheds incident deltas — heaviest nodes first, so two adjacent
    /// hubs cannot both drop their shared edge — as long as the delta
    /// keeps its other broadcaster (every delta's third-vertex audience
    /// is adjacent to *both* endpoints, so one broadcaster suffices; see
    /// the module docs). Returns, per node, the deltas it must **not**
    /// broadcast.
    fn plan_broadcasts(
        lists: &BTreeMap<NodeId, Vec<Edge>>,
        budget: Option<usize>,
    ) -> BTreeMap<NodeId, BTreeSet<Edge>> {
        let mut dropped: BTreeMap<NodeId, BTreeSet<Edge>> = BTreeMap::new();
        let Some(budget) = budget else {
            return dropped;
        };
        // Each effective delta starts with both endpoints broadcasting.
        let mut broadcasters: BTreeMap<Edge, usize> = BTreeMap::new();
        for list in lists.values() {
            for e in list {
                *broadcasters.entry(*e).or_insert(0) += 1;
            }
        }
        let mut order: Vec<NodeId> = lists.keys().copied().collect();
        order.sort_by_key(|v| (std::cmp::Reverse(lists[v].len()), v.index()));
        for node in order {
            let mut load = lists[&node].len();
            if load <= budget {
                break; // sorted by decreasing load: nobody left is over
            }
            let mut edges = lists[&node].clone();
            edges.sort_unstable();
            for e in edges {
                if load <= budget {
                    break;
                }
                let count = broadcasters.get_mut(&e).expect("edge was counted");
                if *count > 1 {
                    *count -= 1;
                    dropped.entry(node).or_default().insert(e);
                    load -= 1;
                }
            }
        }
        dropped
    }

    /// Computes the BFS forest of the epoch's union topology `G ∪ G'`
    /// for the convergecast: `union_lists` holds the already-updated
    /// lists of insertion endpoints, every other node keeps its current
    /// (pre-batch) list.
    fn bfs_forest(
        &self,
        union_lists: &BTreeMap<NodeId, Vec<NodeId>>,
        crashed: &[bool],
    ) -> BfsForest {
        let n = self.node_count();
        let mut forest = BfsForest {
            parent: vec![None; n],
            children: vec![0; n],
            roots: Vec::new(),
            height: vec![0; n],
        };
        let mut visited = vec![false; n];
        let mut queue: VecDeque<NodeId> = VecDeque::new();
        let mut order: Vec<NodeId> = Vec::with_capacity(n);
        for i in 0..n {
            // Crashed nodes sit out the epoch entirely: they neither
            // relay nor root a component (their candidates are
            // recomputed centrally).
            if visited[i] || crashed[i] {
                continue;
            }
            let root = NodeId::from_index(i);
            visited[i] = true;
            forest.roots.push(root);
            queue.push_back(root);
            while let Some(u) = queue.pop_front() {
                order.push(u);
                let neighbors = match union_lists.get(&u) {
                    Some(list) => list.as_slice(),
                    None => self.adjacency_of(u),
                };
                for &w in neighbors {
                    if !visited[w.index()] && !crashed[w.index()] {
                        visited[w.index()] = true;
                        forest.parent[w.index()] = Some(u);
                        forest.children[u.index()] += 1;
                        queue.push_back(w);
                    }
                }
            }
        }
        // Heights bottom-up: reverse BFS order visits every child before
        // its parent.
        for &u in order.iter().rev() {
            if let Some(p) = forest.parent[u.index()] {
                let lift = forest.height[u.index()] + 1;
                forest.height[p.index()] = forest.height[p.index()].max(lift);
            }
        }
        forest
    }

    /// Drains every online node's per-epoch candidates *and*
    /// convergecast aggregates into the coordinator-side sets. The
    /// merges are exactly-once, so calling this repeatedly (after the
    /// main epoch and after every repair epoch) is harmless. Returns
    /// whether any node latched convergecast trouble.
    fn collect_candidates(
        &mut self,
        crashed: &[bool],
        cand_dead: &mut TriangleSet,
        cand_born: &mut TriangleSet,
    ) -> bool {
        let mut trouble = false;
        for (i, &down) in crashed.iter().enumerate() {
            if down {
                continue;
            }
            let prog = self.sim.program_mut(NodeId::from_index(i));
            trouble |= prog.agg_trouble;
            let (dead, born) = prog.drain_candidates();
            merge_added_candidates(cand_dead, &dead);
            merge_added_candidates(cand_born, &born);
            let (agg_dead, agg_born) = prog.take_aggregates();
            merge_added_candidates(cand_dead, agg_dead.iter());
            merge_added_candidates(cand_born, agg_born.iter());
        }
        trouble
    }

    /// Central (coordinator-side) recomputation of one third-vertex
    /// candidate: does `w` close a triangle over delta edge `e`?
    /// Removal candidates check the pre-batch snapshot, insertions the
    /// post-batch one — exactly the membership a healthy receiver
    /// would have tested in-network.
    #[allow(clippy::too_many_arguments)]
    fn central_candidate(
        w: NodeId,
        e: Edge,
        ins_phase: bool,
        pre_adj: &[Vec<NodeId>],
        post_adj: &[Vec<NodeId>],
        cand_dead: &mut TriangleSet,
        cand_born: &mut TriangleSet,
    ) {
        if e.contains(w) {
            return;
        }
        let adj = if ins_phase {
            &post_adj[w.index()]
        } else {
            &pre_adj[w.index()]
        };
        let (u, v) = e.endpoints();
        if adj.binary_search(&u).is_ok() && adj.binary_search(&v).is_ok() {
            let t = Triangle::new(u, v, w);
            if ins_phase {
                merge_added_candidates(cand_born, std::iter::once(&t));
            } else {
                merge_added_candidates(cand_dead, std::iter::once(&t));
            }
        }
    }

    /// Runs one pre-validated batch as a network epoch (see the
    /// [module documentation](self)). A batch that coalesces or
    /// classifies to nothing runs no epoch — the documented floor cost
    /// of zero rounds.
    fn process_batch(&mut self, raw: &DeltaBatch) -> Result<ApplyReport, StreamError> {
        let raw_len = raw.len();
        let coalesced = raw.coalesce();
        let mut report = ApplyReport {
            deltas_seen: raw_len,
            noops: raw_len - coalesced.len(),
            ..ApplyReport::default()
        };

        // Classify against the current graph: only effective deltas
        // enter the network.
        let classify_span = congest_obs::trace::span("distributed", "classify");
        let mut removes: Vec<Edge> = Vec::new();
        let mut inserts: Vec<Edge> = Vec::new();
        for d in &coalesced {
            let (u, v) = d.edge.endpoints();
            let present = self.has_edge(u, v);
            match d.op {
                DeltaOp::Insert if !present => inserts.push(d.edge),
                DeltaOp::Remove if present => removes.push(d.edge),
                _ => report.noops += 1,
            }
        }
        report.inserts_applied = inserts.len();
        report.removes_applied = removes.len();
        drop(classify_span);
        if inserts.is_empty() && removes.is_empty() {
            return Ok(report);
        }
        let plan_span = congest_obs::trace::span("distributed", "plan");

        // Crash bookkeeping (hardened engines only): nodes scheduled as
        // crashed for this epoch leave the protocol entirely — their
        // slices go to the coordinator's shadow, their candidates are
        // recomputed centrally. Nodes whose outage just ended rejoin
        // with a state-sync descriptor built from the shadow.
        let n = self.node_count();
        let hardened = self.hardened();
        let epoch_index = self.sim.epoch();
        let mut crashed = vec![false; n];
        if hardened {
            for (i, flag) in crashed.iter_mut().enumerate() {
                *flag = self.fault_plan.crashed(i, epoch_index);
                if *flag && !self.offline.contains_key(&NodeId::from_index(i)) {
                    let node = NodeId::from_index(i);
                    let list = self.sim.program(node).adjacency.clone();
                    self.offline.insert(node, list);
                }
            }
        }
        let any_crashed = crashed.iter().any(|&c| c);

        // Per-node incident slices, the helper-split broadcast plans,
        // and the global phase lengths: a phase must cover the longest
        // post-split per-node queue, at most
        // ceil(assigned deltas / edges-per-message). Crashed endpoints
        // cannot broadcast; a delta both of whose endpoints are down is
        // uncovered and falls back to central recomputation.
        let codec = IdCodec::new(n as u64);
        let per_message =
            DynamicTriangleNode::edges_per_message(self.bandwidth_bits, codec.width());
        let mut rm_slices: BTreeMap<NodeId, Vec<Edge>> = BTreeMap::new();
        let mut ins_slices: BTreeMap<NodeId, Vec<Edge>> = BTreeMap::new();
        for (edges, slices) in [(&removes, &mut rm_slices), (&inserts, &mut ins_slices)] {
            for e in edges.iter() {
                for node in [e.lo(), e.hi()] {
                    slices.entry(node).or_default().push(*e);
                }
            }
        }
        let mut uncovered: Vec<(Edge, bool)> = Vec::new();
        if any_crashed {
            rm_slices.retain(|node, _| !crashed[node.index()]);
            ins_slices.retain(|node, _| !crashed[node.index()]);
            for (edges, ins_phase) in [(&removes, false), (&inserts, true)] {
                for e in edges.iter() {
                    if crashed[e.lo().index()] && crashed[e.hi().index()] {
                        uncovered.push((*e, ins_phase));
                    }
                }
            }
        }
        let rm_dropped = Self::plan_broadcasts(&rm_slices, self.phase_budget(&rm_slices));
        let ins_dropped = Self::plan_broadcasts(&ins_slices, self.phase_budget(&ins_slices));
        let waves = |count: usize| count.div_ceil(per_message) as u64;
        let assigned = |slices: &BTreeMap<NodeId, Vec<Edge>>,
                        dropped: &BTreeMap<NodeId, BTreeSet<Edge>>| {
            slices
                .iter()
                .map(|(node, list)| waves(list.len() - dropped.get(node).map_or(0, BTreeSet::len)))
                .max()
                .unwrap_or(0)
        };
        // A hardened phase is extended by the trailer rounds at its end.
        let trailer = if hardened {
            TRAILER_BITS.div_ceil(self.bandwidth_bits.max(1)) as u64
        } else {
            0
        };
        let extend = |waves: u64| if waves > 0 { waves + trailer } else { 0 };
        let rm_rounds = extend(assigned(&rm_slices, &rm_dropped));
        let ins_rounds = extend(assigned(&ins_slices, &ins_dropped));

        // Pre/post-batch adjacency snapshots (hardened only): the
        // coordinator's expectation mirror and every central
        // recomputation check membership against these.
        let (pre_adj, post_adj) = if hardened {
            let pre: Vec<Vec<NodeId>> = (0..n)
                .map(|i| self.adjacency_of(NodeId::from_index(i)).to_vec())
                .collect();
            let mut post = pre.clone();
            for (edges, insert) in [(&removes, false), (&inserts, true)] {
                for e in edges.iter() {
                    for (node, other) in [(e.lo(), e.hi()), (e.hi(), e.lo())] {
                        let list = &mut post[node.index()];
                        if insert {
                            sorted_insert(list, other);
                        } else {
                            sorted_remove(list, other);
                        }
                    }
                }
            }
            (pre, post)
        } else {
            (Vec::new(), Vec::new())
        };

        // Epoch topology: the union G ∪ G' — a removed link still
        // carries its tear-down broadcast (and its convergecast leg),
        // an inserted link exists as soon as its edge does. Union lists
        // are accumulated per node first so several inserts at one
        // endpoint compose instead of overwriting each other.
        let mut union_lists: BTreeMap<NodeId, Vec<NodeId>> = BTreeMap::new();
        for e in &inserts {
            for (node, other) in [(e.lo(), e.hi()), (e.hi(), e.lo())] {
                let list = union_lists
                    .entry(node)
                    .or_insert_with(|| self.adjacency_of(node).to_vec());
                sorted_insert(list, other);
            }
        }
        // The convergecast forest spans the union topology; computed
        // before the topology mutations below so it can read the
        // pre-batch lists of untouched nodes.
        let aggregate = self.aggregation == Aggregation::Convergecast;
        let forest = aggregate.then(|| self.bfs_forest(&union_lists, &crashed));
        for (node, list) in union_lists {
            self.sim.update_topology(node, list);
        }

        // Per-node convergecast deadlines (hardened aggregation only):
        // a node abandons overdue child streams `height·hop` rounds
        // into the aggregation phase, where `hop` bounds the rounds any
        // single subtree stream can need — so a parent's deadline always
        // leaves room for a child that gave up at its own.
        let mut deadlines = vec![0u64; n];
        if hardened && aggregate {
            let cand_bound: u64 = removes
                .iter()
                .map(|e| (pre_adj[e.lo().index()].len()).min(pre_adj[e.hi().index()].len()) as u64)
                .chain(inserts.iter().map(|e| {
                    (post_adj[e.lo().index()].len()).min(post_adj[e.hi().index()].len()) as u64
                }))
                .sum();
            let agg_bits = 2 * COUNT_BITS as u64
                + 3 * codec.width() as u64 * cand_bound
                + CHECKSUM_BITS as u64;
            let per_chunk = self.bandwidth_bits.saturating_sub(1).max(1) as u64;
            let hop = agg_bits.div_ceil(per_chunk) + 1;
            if let Some(forest) = &forest {
                let broadcast_end = rm_rounds + ins_rounds;
                for (deadline, &height) in deadlines.iter_mut().zip(&forest.height) {
                    *deadline = broadcast_end + (height + 1) * hop + 2;
                }
            }
        }

        // Rejoining nodes leave the shadow now that their sync list is
        // fixed: from this epoch on their in-network slice is live again.
        let mut sync_lists: BTreeMap<NodeId, Vec<NodeId>> = BTreeMap::new();
        if hardened {
            let rejoining: Vec<NodeId> = self
                .offline
                .keys()
                .copied()
                .filter(|v| !crashed[v.index()])
                .collect();
            for node in rejoining {
                let list = self.offline.remove(&node).expect("key was just listed");
                sync_lists.insert(node, list);
            }
        }

        // Inject every online node's batch descriptor (all nodes need
        // the phase lengths to know when the epoch ends, even pure
        // detectors — and every node has a convergecast leg to play).
        // Crashed nodes get nothing: they sit the epoch out.
        let empty = Vec::new();
        for i in 0..n {
            if crashed[i] {
                continue;
            }
            let node = NodeId::from_index(i);
            let mut w = BitWriter::new();
            if hardened {
                w.write_bool(false); // kind: batch, not repair
                match sync_lists.get(&node) {
                    Some(list) => {
                        w.write_bool(true);
                        w.write_bits(list.len() as u64, COUNT_BITS);
                        for v in list {
                            codec.encode(&mut w, v.as_u64());
                        }
                    }
                    None => w.write_bool(false),
                }
            }
            w.write_bits(rm_rounds, COUNT_BITS);
            w.write_bits(ins_rounds, COUNT_BITS);
            w.write_bool(aggregate);
            if let Some(forest) = &forest {
                match forest.parent[i] {
                    Some(parent) => {
                        w.write_bool(true);
                        codec.encode(&mut w, parent.as_u64());
                    }
                    None => w.write_bool(false),
                }
                w.write_bits(forest.children[i] as u64, COUNT_BITS);
                if hardened {
                    w.write_bits(deadlines[i], DEADLINE_BITS);
                }
            }
            for (slices, dropped) in [(&rm_slices, &rm_dropped), (&ins_slices, &ins_dropped)] {
                let list = slices.get(&node).unwrap_or(&empty);
                let shed = dropped.get(&node);
                w.write_bits(list.len() as u64, COUNT_BITS);
                for e in list {
                    codec.encode(&mut w, e.lo().as_u64());
                    codec.encode(&mut w, e.hi().as_u64());
                    w.write_bool(!shed.is_some_and(|s| s.contains(e)));
                }
            }
            self.sim.inject(node, w.finish());
        }
        drop(plan_span);

        // The epoch runs as one opaque simulator call; when tracing is
        // on, its wall time is apportioned between the broadcast prefix
        // and the convergecast suffix by their round shares and recorded
        // as two derived spans (see `congest_obs::trace::record_span`).
        let trace_on = congest_obs::trace::enabled();
        let epoch_start_us = if trace_on { congest_obs::now_us() } else { 0 };
        let epoch = self.sim.run_epoch();
        if !epoch.completed() {
            return Err(StreamError::RoundLimit {
                rounds: epoch.metrics.rounds,
            });
        }
        let mut faults_dropped = epoch.metrics.dropped_messages;
        let mut faults_corrupted = epoch.metrics.corrupted_messages;
        let mut faults_duplicated = epoch.metrics.duplicated_messages;
        // The broadcast prefix is exactly rm + ins + 1 rounds (the +1 is
        // the descriptor/boundary round); everything beyond it is the
        // convergecast (free-aggregation epochs end right there).
        // Recovery epochs accumulate on top below; the running total
        // follows once the batch is fully settled.
        self.last_batch = CongestCost::from_epoch(&epoch.metrics, rm_rounds + ins_rounds + 1);
        self.epochs += 1;
        if trace_on {
            let wall_us = congest_obs::now_us().saturating_sub(epoch_start_us);
            let total_rounds = self.last_batch.rounds.max(1);
            let broadcast_us =
                wall_us * (total_rounds - self.last_batch.convergecast_rounds) / total_rounds;
            congest_obs::trace::record_span(
                "distributed",
                "broadcast",
                epoch_start_us,
                broadcast_us,
            );
            congest_obs::trace::record_span(
                "distributed",
                "convergecast",
                epoch_start_us + broadcast_us,
                wall_us - broadcast_us,
            );
        }
        // Per-epoch network load imbalance, for the bench skew export.
        let mean_bits = epoch.metrics.mean_received_bits();
        if mean_bits > 0.0 {
            let ratio = epoch.metrics.max_received_bits() as f64 / mean_bits;
            self.skew_max = self.skew_max.max(ratio);
            self.skew_sum += ratio;
        } else {
            // An epoch with traffic on no node still counts toward the
            // mean as perfectly even.
            self.skew_sum += 1.0;
        }

        // A node that received an undecodable payload latched the
        // violation; surface it instead of merging a corrupt epoch.
        // (Hardened receivers never latch on faulted traffic — a bad
        // stream just fails verification — so this still only fires on
        // genuinely corrupt injected input.)
        for (i, &down) in crashed.iter().enumerate() {
            if down {
                continue;
            }
            let node = NodeId::from_index(i);
            if let Some(detail) = &self.sim.program(node).protocol_error {
                return Err(StreamError::Protocol {
                    node,
                    detail: detail.clone(),
                });
            }
        }

        // Coordinator merge through the shared exactly-once dedup core.
        let merge_span = congest_obs::trace::span("distributed", "merge");
        let mut degraded = false;
        if hardened {
            // Hardened merge: collect idempotently from *everything* —
            // every node's direct candidates plus every node's (not
            // just the roots') convergecast aggregates, so a lost
            // convergecast stream costs nothing that the broadcasts
            // verified. The exactly-once merge core makes the overlap
            // harmless.
            let mut cand_dead = TriangleSet::new();
            let mut cand_born = TriangleSet::new();
            degraded |= self.collect_candidates(&crashed, &mut cand_dead, &mut cand_born);
            drop(merge_span);

            // Everything from here on is recovery: central
            // recomputation for crashed and uncovered pieces, and
            // retransmission epochs for broadcast streams that failed
            // verification.
            let recovery_start_us = if trace_on { congest_obs::now_us() } else { 0 };

            // Crashed nodes miss every broadcast: recompute their
            // third-vertex candidates centrally against the snapshots.
            for (i, _) in crashed.iter().enumerate().filter(|(_, c)| **c) {
                let w = NodeId::from_index(i);
                for (edges, ins_phase) in [(&removes, false), (&inserts, true)] {
                    for e in edges.iter() {
                        Self::central_candidate(
                            w,
                            *e,
                            ins_phase,
                            &pre_adj,
                            &post_adj,
                            &mut cand_dead,
                            &mut cand_born,
                        );
                    }
                }
            }
            // Uncovered deltas (both endpoints down) had no broadcaster
            // at all: recompute for every online third vertex too.
            for &(e, ins_phase) in &uncovered {
                for (i, _) in crashed.iter().enumerate().filter(|(_, c)| !**c) {
                    Self::central_candidate(
                        NodeId::from_index(i),
                        e,
                        ins_phase,
                        &pre_adj,
                        &post_adj,
                        &mut cand_dead,
                        &mut cand_born,
                    );
                }
            }
            degraded |= any_crashed || !uncovered.is_empty();

            // Expectation mirror: replay `build_queues` for every
            // assigned broadcaster and compare against each online
            // receiver's verified-sender sets. Anything missing becomes
            // a pending retransmission.
            let assign = |slices: &BTreeMap<NodeId, Vec<Edge>>,
                          dropped: &BTreeMap<NodeId, BTreeSet<Edge>>| {
                slices
                    .iter()
                    .map(|(node, list)| {
                        let shed = dropped.get(node);
                        let kept: Vec<Edge> = list
                            .iter()
                            .copied()
                            .filter(|e| !shed.is_some_and(|s| s.contains(e)))
                            .collect();
                        (*node, kept)
                    })
                    .collect::<BTreeMap<NodeId, Vec<Edge>>>()
            };
            let rm_assigned = assign(&rm_slices, &rm_dropped);
            let ins_assigned = assign(&ins_slices, &ins_dropped);
            let mut pending: BTreeMap<(NodeId, NodeId), PendingStream> = BTreeMap::new();
            for (ins_phase, assigned_map) in [(false, &rm_assigned), (true, &ins_assigned)] {
                for (s, edges) in assigned_map {
                    if edges.is_empty() {
                        continue;
                    }
                    let audience = if ins_phase {
                        &post_adj[s.index()]
                    } else {
                        &pre_adj[s.index()]
                    };
                    for &w in audience {
                        if crashed[w.index()] {
                            continue; // already recomputed centrally
                        }
                        let q: Vec<Edge> =
                            edges.iter().copied().filter(|e| !e.contains(w)).collect();
                        if q.is_empty() {
                            continue;
                        }
                        let prog = self.sim.program(w);
                        let verified = if ins_phase {
                            prog.verified_ins.contains(s)
                        } else {
                            prog.verified_rm.contains(s)
                        };
                        if !verified {
                            let p = pending.entry((*s, w)).or_default();
                            if ins_phase {
                                p.ins = q;
                            } else {
                                p.rm = q;
                            }
                        }
                    }
                }
            }

            // Retransmission loop: re-send every pending stream in
            // dedicated repair epochs, accounted as recovery rounds,
            // until everything verified or the attempt budget runs out.
            let mut attempts = 0u32;
            let mut repairs_ran = false;
            while !pending.is_empty() && attempts < MAX_REPAIR_ATTEMPTS {
                attempts += 1;
                let repair_epoch = self.sim.epoch();
                // A pair whose participant is crashed during this repair
                // epoch cannot retransmit — fall back to central
                // recomputation for it (a degradation, not a failure).
                let plan = self.fault_plan;
                pending.retain(|(s, w), p| {
                    if plan.crashed(s.index(), repair_epoch)
                        || plan.crashed(w.index(), repair_epoch)
                    {
                        for (edges, ins_phase) in [(&p.rm, false), (&p.ins, true)] {
                            for e in edges.iter() {
                                Self::central_candidate(
                                    *w,
                                    *e,
                                    ins_phase,
                                    &pre_adj,
                                    &post_adj,
                                    &mut cand_dead,
                                    &mut cand_born,
                                );
                            }
                        }
                        degraded = true;
                        false
                    } else {
                        true
                    }
                });
                if pending.is_empty() {
                    break;
                }
                let mut send_q: BTreeMap<NodeId, Vec<(NodeId, Vec<Edge>)>> = BTreeMap::new();
                let mut expect: BTreeMap<NodeId, Vec<(NodeId, usize)>> = BTreeMap::new();
                let mut max_edges = 0usize;
                for ((s, w), p) in &pending {
                    let mut stream = p.rm.clone();
                    stream.extend_from_slice(&p.ins);
                    max_edges = max_edges.max(stream.len());
                    expect.entry(*w).or_default().push((*s, p.rm.len()));
                    send_q.entry(*s).or_default().push((*w, stream));
                }
                let repair_rounds = (max_edges.div_ceil(per_message) as u64) + trailer;
                let participants: BTreeSet<NodeId> =
                    send_q.keys().chain(expect.keys()).copied().collect();
                for node in &participants {
                    let mut w = BitWriter::new();
                    w.write_bool(true); // kind: repair
                    w.write_bits(repair_rounds, COUNT_BITS);
                    let queues = send_q.get(node).map_or(&[] as &[_], Vec::as_slice);
                    w.write_bits(queues.len() as u64, COUNT_BITS);
                    for (to, edges) in queues {
                        codec.encode(&mut w, to.as_u64());
                        w.write_bits(edges.len() as u64, COUNT_BITS);
                        for e in edges {
                            codec.encode(&mut w, e.lo().as_u64());
                            codec.encode(&mut w, e.hi().as_u64());
                        }
                    }
                    let expects = expect.get(node).map_or(&[] as &[_], Vec::as_slice);
                    w.write_bits(expects.len() as u64, COUNT_BITS);
                    for (from, rm_len) in expects {
                        codec.encode(&mut w, from.as_u64());
                        w.write_bits(*rm_len as u64, COUNT_BITS);
                    }
                    self.sim.inject(*node, w.finish());
                }
                let repair = self.sim.run_epoch();
                if !repair.completed() {
                    return Err(StreamError::RoundLimit {
                        rounds: repair.metrics.rounds,
                    });
                }
                repairs_ran = true;
                faults_dropped += repair.metrics.dropped_messages;
                faults_corrupted += repair.metrics.corrupted_messages;
                faults_duplicated += repair.metrics.duplicated_messages;
                self.last_batch.add_recovery_epoch(&repair.metrics);
                self.recovery.epoch_repairs += 1;
                self.recovery.retransmit_rounds += repair.metrics.rounds;
                self.collect_candidates(&crashed, &mut cand_dead, &mut cand_born);
                pending.retain(|(s, w), _| !self.sim.program(*w).repair_verified.contains(s));
            }
            if !pending.is_empty() {
                return Err(StreamError::RecoveryExhausted {
                    attempts,
                    pending: pending.len(),
                });
            }

            if degraded {
                self.recovery.degraded_epochs += 1;
            }
            report.triangles_removed +=
                merge_removed_candidates(&mut self.triangles, cand_dead.iter());
            report.triangles_added += merge_added_candidates(&mut self.triangles, cand_born.iter());

            if trace_on && (repairs_ran || degraded) {
                let dur = congest_obs::now_us().saturating_sub(recovery_start_us);
                congest_obs::trace::record_span("distributed", "recovery", recovery_start_us, dur);
            }
            congest_obs::counter_add("faults.dropped", faults_dropped);
            congest_obs::counter_add("faults.corrupted", faults_corrupted);
            congest_obs::counter_add("faults.duplicated", faults_duplicated);
            congest_obs::gauge_set(
                "recovery.retransmit_rounds",
                self.recovery.retransmit_rounds as f64,
            );
            congest_obs::gauge_set("recovery.epoch_repairs", self.recovery.epoch_repairs as f64);
            congest_obs::gauge_set(
                "recovery.degraded_epochs",
                self.recovery.degraded_epochs as f64,
            );
        } else {
            match &forest {
                // Free aggregation: drain every node's candidates
                // directly (a merge the network never paid for — the
                // bench control).
                None => {
                    for i in 0..n {
                        let (dead, born) = self
                            .sim
                            .program_mut(NodeId::from_index(i))
                            .drain_candidates();
                        report.triangles_removed +=
                            merge_removed_candidates(&mut self.triangles, &dead);
                        report.triangles_added +=
                            merge_added_candidates(&mut self.triangles, &born);
                    }
                }
                // Convergecast: the network already aggregated each
                // component's candidates at its root over accounted
                // rounds; the coordinator only reads the roots.
                Some(forest) => {
                    for &root in &forest.roots {
                        let (dead, born) = self.sim.program_mut(root).take_aggregates();
                        report.triangles_removed +=
                            merge_removed_candidates(&mut self.triangles, dead.iter());
                        report.triangles_added +=
                            merge_added_candidates(&mut self.triangles, born.iter());
                    }
                }
            }
            drop(merge_span);
        }

        // Advance the shadow slices of still-crashed nodes to the
        // post-batch graph — the truth the rejoin sync (and the engine's
        // own adjacency view) will be read from.
        if !self.offline.is_empty() {
            for (node, list) in self.offline.iter_mut() {
                *list = post_adj[node.index()].clone();
            }
        }

        // Settle the communication topology on G' (drop removed links),
        // once per distinct endpoint — a hub shedding many edges in one
        // batch gets a single O(degree) clone, not one per edge.
        let removed_endpoints: BTreeSet<NodeId> =
            removes.iter().flat_map(|e| [e.lo(), e.hi()]).collect();
        for node in removed_endpoints {
            let list = self.adjacency_of(node).to_vec();
            self.sim.update_topology(node, list);
        }

        self.edge_count += inserts.len();
        self.edge_count -= removes.len();
        self.total.accumulate(&self.last_batch);
        debug_assert_eq!(
            (0..n)
                .map(|i| self.degree(NodeId::from_index(i)))
                .sum::<usize>(),
            2 * self.edge_count,
            "node slices lost symmetry"
        );
        Ok(report)
    }
}

/// The engine *is* an adjacency view (pending deltas excluded), read
/// straight from the network nodes' own slices: the oracle and the
/// static CONGEST drivers run on the live distributed graph directly.
impl AdjacencyView for DistributedTriangleEngine {
    fn node_count(&self) -> usize {
        DistributedTriangleEngine::node_count(self)
    }

    fn neighbors(&self, node: NodeId) -> &[NodeId] {
        DistributedTriangleEngine::neighbors(self, node)
    }

    fn edge_count(&self) -> usize {
        DistributedTriangleEngine::edge_count(self)
    }

    fn degree(&self, node: NodeId) -> usize {
        DistributedTriangleEngine::degree(self, node)
    }

    fn has_edge(&self, a: NodeId, b: NodeId) -> bool {
        DistributedTriangleEngine::has_edge(self, a, b)
    }
}

impl fmt::Debug for DistributedTriangleEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "DistributedTriangleEngine(n={}, m={}, triangles={}, mode={}, exec={}, split={}, \
             agg={}, epochs={}, rounds={})",
            self.node_count(),
            self.edge_count(),
            self.triangle_count(),
            self.mode.name(),
            self.executor().name(),
            self.hub_split.name(),
            self.aggregation.name(),
            self.epochs,
            self.total.rounds,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::TriangleIndex;
    use congest_graph::generators::{Classic, Gnp};
    use congest_graph::triangles as oracle;

    fn v(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn empty_engine_counts_nothing() {
        let engine = DistributedTriangleEngine::new(5);
        assert_eq!(engine.node_count(), 5);
        assert_eq!(engine.edge_count(), 0);
        assert_eq!(engine.triangle_count(), 0);
        assert_eq!(engine.epochs(), 0);
        assert!(engine.matches_oracle());
    }

    #[test]
    fn inserting_a_triangle_step_by_step() {
        let mut engine = DistributedTriangleEngine::new(4);
        let mut b = DeltaBatch::new();
        b.insert(v(0), v(1)).insert(v(1), v(2));
        let r = engine.apply(&b).unwrap();
        assert_eq!(r.inserts_applied, 2);
        assert_eq!(r.triangles_added, 0);

        let mut close = DeltaBatch::new();
        close.insert(v(0), v(2));
        let r = engine.apply(&close).unwrap();
        assert_eq!(r.triangles_added, 1);
        assert_eq!(engine.triangle_count(), 1);
        assert!(engine
            .triangles()
            .contains(&Triangle::new(v(0), v(1), v(2))));
        assert!(engine.matches_oracle());
        assert_eq!(engine.epochs(), 2);
        assert!(engine.last_batch_cost().rounds >= 2);
        assert!(engine.total_cost().messages >= engine.last_batch_cost().messages);
    }

    #[test]
    fn one_batch_inserting_a_whole_triangle_counts_it_once() {
        let mut engine = DistributedTriangleEngine::new(4);
        let mut b = DeltaBatch::new();
        b.insert(v(0), v(1)).insert(v(1), v(2)).insert(v(0), v(2));
        let r = engine.apply(&b).unwrap();
        assert_eq!(r.triangles_added, 1);
        assert_eq!(engine.triangle_count(), 1);
        assert!(engine.matches_oracle());
    }

    #[test]
    fn one_batch_removing_two_edges_of_a_triangle_counts_it_once() {
        let k4 = Classic::Complete(4).generate();
        let mut engine = DistributedTriangleEngine::from_graph(&k4);
        assert_eq!(engine.triangle_count(), 4);
        let mut b = DeltaBatch::new();
        b.remove(v(0), v(1)).remove(v(1), v(2));
        let r = engine.apply(&b).unwrap();
        // {0,1,2} dies by two of its edges but is counted once;
        // {0,1,3} and {1,2,3} die by one edge each.
        assert_eq!(r.triangles_removed, 3);
        assert_eq!(engine.triangle_count(), 1);
        assert!(engine.matches_oracle());
    }

    #[test]
    fn mixed_insert_and_remove_batch_matches_oracle() {
        // Removing a wing while inserting the closing edge: the insert
        // must not report a triangle whose wing died in the same batch.
        let mut engine = DistributedTriangleEngine::new(4);
        let mut base = DeltaBatch::new();
        base.insert(v(0), v(1)).insert(v(1), v(2));
        engine.apply(&base).unwrap();
        let mut b = DeltaBatch::new();
        b.remove(v(1), v(2)).insert(v(0), v(2));
        let r = engine.apply(&b).unwrap();
        assert_eq!(r.triangles_added, 0);
        assert_eq!(r.triangles_removed, 0);
        assert_eq!(engine.triangle_count(), 0);
        assert!(engine.matches_oracle());
    }

    #[test]
    fn from_graph_seeds_edges_and_triangles() {
        let g = Gnp::new(40, 0.2).seeded(9).generate();
        let engine = DistributedTriangleEngine::from_graph(&g);
        assert_eq!(engine.edge_count(), g.edge_count());
        assert_eq!(engine.triangles(), &oracle::list_all(&g));
        for node in g.nodes() {
            assert_eq!(engine.neighbors(node), g.neighbors(node));
        }
    }

    #[test]
    fn out_of_range_batch_is_rejected_atomically() {
        let mut engine = DistributedTriangleEngine::new(3);
        let mut b = DeltaBatch::new();
        b.insert(v(0), v(1)).insert(v(0), v(7));
        let err = engine.apply(&b).unwrap_err();
        assert_eq!(
            err,
            StreamError::NodeOutOfRange {
                node: v(7),
                node_count: 3
            }
        );
        assert_eq!(engine.edge_count(), 0);
        assert_eq!(engine.epochs(), 0);
    }

    #[test]
    fn noop_batches_run_no_epoch() {
        let mut engine = DistributedTriangleEngine::new(4);
        let mut b = DeltaBatch::new();
        b.remove(v(0), v(1)); // absent edge
        let r = engine.apply(&b).unwrap();
        assert_eq!(r.noops, 1);
        assert_eq!(engine.epochs(), 0);
        assert_eq!(engine.last_batch_cost(), CongestCost::default());

        // A flap coalesces away entirely: still no epoch.
        let mut flap = DeltaBatch::new();
        flap.insert(v(0), v(1)).remove(v(0), v(1));
        let r = engine.apply(&flap).unwrap();
        assert_eq!(r.noops, 2);
        assert_eq!(engine.epochs(), 0);
    }

    #[test]
    fn deferred_mode_buffers_until_flush() {
        let mut engine = DistributedTriangleEngine::new(3).with_mode(ApplyMode::Deferred);
        assert_eq!(engine.mode(), ApplyMode::Deferred);
        let mut b = DeltaBatch::new();
        b.insert(v(0), v(1)).insert(v(1), v(2)).insert(v(0), v(2));
        let r = engine.apply(&b).unwrap();
        assert_eq!(r.deltas_deferred, 3);
        assert_eq!(engine.triangle_count(), 0);
        assert_eq!(engine.pending_deltas(), 3);
        assert!(engine.pending_age().is_some());

        let r = engine.flush();
        assert_eq!(r.deltas_seen, 0);
        assert_eq!(r.inserts_applied, 3);
        assert_eq!(r.triangles_added, 1);
        assert_eq!(engine.pending_deltas(), 0);
        assert!(engine.pending_age().is_none());
        assert!(engine.matches_oracle());
        // The whole deferred window cost one epoch.
        assert_eq!(engine.epochs(), 1);
    }

    #[test]
    fn switching_modes_flushes_pending_deltas_in_order() {
        let mut engine = DistributedTriangleEngine::new(2).with_mode(ApplyMode::Deferred);
        let mut ins = DeltaBatch::new();
        ins.insert(v(0), v(1));
        engine.apply(&ins).unwrap();
        let engine = engine.with_mode(ApplyMode::Eager);
        assert_eq!(engine.pending_deltas(), 0);
        assert!(engine.has_edge(v(0), v(1)));
    }

    #[test]
    fn agrees_with_the_single_threaded_index_on_a_stream() {
        let g = Gnp::new(60, 0.12).seeded(11).generate();
        let mut reference = TriangleIndex::from_graph(&g);
        let mut engine = DistributedTriangleEngine::from_graph(&g);
        for step in 0..15u32 {
            let mut b = DeltaBatch::new();
            for j in 0..10u32 {
                let a = (step * 7 + j * 13) % 60;
                let c = (step * 11 + j * 17 + 1) % 60;
                if a != c {
                    if (step + j) % 3 == 0 {
                        b.remove(v(a), v(c));
                    } else {
                        b.insert(v(a), v(c));
                    }
                }
            }
            reference.apply(&b).unwrap();
            engine.apply(&b).unwrap();
            assert_eq!(reference.triangles(), engine.triangles(), "step {step}");
            assert_eq!(reference.edge_count(), engine.edge_count());
        }
        assert!(engine.matches_oracle());
        assert!(engine.total_cost().rounds > 0);
        assert!(engine.total_cost().bits > 0);
    }

    #[test]
    fn wider_bandwidth_packs_more_edges_and_saves_rounds() {
        // The same hub-heavy batch under 1-edge and 8-edge messages: the
        // narrow network needs more rounds for the same information.
        let run = |bandwidth: Bandwidth| {
            let mut engine = DistributedTriangleEngine::with_bandwidth(32, bandwidth);
            let mut base = DeltaBatch::new();
            for i in 1..16 {
                base.insert(v(0), v(i)); // hub
            }
            engine.apply(&base).unwrap();
            let mut b = DeltaBatch::new();
            for i in 1..9 {
                b.remove(v(0), v(i));
            }
            engine.apply(&b).unwrap();
            assert!(engine.matches_oracle());
            engine.last_batch_cost()
        };
        let narrow = run(Bandwidth::default());
        let wide = run(Bandwidth::Bits(16 * 10));
        assert!(
            narrow.rounds > wide.rounds,
            "narrow {narrow:?} should need more rounds than wide {wide:?}"
        );
        assert!(narrow.bits >= wide.bits);
    }

    #[test]
    fn static_drivers_run_on_the_live_distributed_graph() {
        // Snapshot-free interop: the Theorem-style oracle runs directly
        // on the engine's AdjacencyView.
        let g = Gnp::new(30, 0.2).seeded(12).generate();
        let mut engine = DistributedTriangleEngine::from_graph(&g);
        let mut b = DeltaBatch::new();
        b.insert(v(0), v(1)).insert(v(1), v(2)).insert(v(0), v(2));
        engine.apply(&b).unwrap();
        let view: &dyn AdjacencyView = &engine;
        assert_eq!(view.node_count(), 30);
        assert_eq!(oracle::count_all_on(&engine), engine.triangle_count());
    }

    #[test]
    fn debug_summarizes() {
        let engine = DistributedTriangleEngine::new(6);
        let s = format!("{engine:?}");
        assert!(s.contains("n=6"));
        assert!(s.contains("epochs=0"));
        assert!(s.contains("exec=sequential"));
    }

    #[test]
    fn threaded_executor_reaches_the_same_state_with_identical_cost() {
        let g = Gnp::new(18, 0.2).seeded(21).generate();
        let mut seq =
            DistributedTriangleEngine::from_graph_with_executor(&g, SimExecutor::Sequential);
        let mut thr =
            DistributedTriangleEngine::from_graph_with_executor(&g, SimExecutor::Threaded);
        assert_eq!(seq.executor(), SimExecutor::Sequential);
        assert_eq!(thr.executor(), SimExecutor::Threaded);
        for step in 0..5u32 {
            let mut b = DeltaBatch::new();
            for j in 0..8u32 {
                let a = (step * 5 + j * 7) % 18;
                let c = (step * 3 + j * 11 + 1) % 18;
                if a != c {
                    if (step + j) % 3 == 0 {
                        b.remove(v(a), v(c));
                    } else {
                        b.insert(v(a), v(c));
                    }
                }
            }
            let rs = seq.apply(&b).unwrap();
            let rt = thr.apply(&b).unwrap();
            assert_eq!(rs, rt, "step {step}: per-batch reports must match");
            assert_eq!(seq.triangles(), thr.triangles(), "step {step}");
            // The executors produce bit-identical network metrics.
            assert_eq!(seq.last_batch_cost(), thr.last_batch_cost(), "step {step}");
        }
        assert_eq!(seq.total_cost(), thr.total_cost());
        assert!(thr.matches_oracle());
    }

    #[test]
    fn threaded_executor_default_is_sequential() {
        assert_eq!(SimExecutor::default(), SimExecutor::Sequential);
        assert_eq!(SimExecutor::Threaded.name(), "threaded");
        let engine = DistributedTriangleEngine::with_executor(4, SimExecutor::Threaded);
        assert_eq!(engine.executor(), SimExecutor::Threaded);
        assert_eq!(engine.node_count(), 4);
    }

    #[test]
    #[should_panic(expected = "cannot carry one edge")]
    fn sub_edge_bandwidth_is_rejected_at_construction() {
        // 8 bits cannot carry two 10-bit ids for n = 1000; the engine
        // must refuse up front instead of panicking mid-epoch.
        let _ = DistributedTriangleEngine::with_bandwidth(1000, Bandwidth::Bits(8));
    }

    #[test]
    fn minimum_viable_bandwidth_is_accepted_and_works() {
        // Exactly one edge per message (2 × 10 bits for n = 1000).
        let mut engine = DistributedTriangleEngine::with_bandwidth(1000, Bandwidth::Bits(20));
        let mut b = DeltaBatch::new();
        b.insert(v(0), v(1)).insert(v(1), v(2)).insert(v(0), v(2));
        engine.apply(&b).unwrap();
        assert_eq!(engine.triangle_count(), 1);
        assert!(engine.matches_oracle());
    }

    /// A star around node 0 with a rim, so hub removals retire real
    /// triangles: the canonical hotspot input.
    fn hub_star(spokes: u32) -> (Graph, DeltaBatch) {
        let mut b = congest_graph::GraphBuilder::new(spokes as usize + 1);
        for i in 1..=spokes {
            b.add_edge(v(0), v(i)).unwrap();
        }
        for i in 1..spokes {
            b.add_edge(v(i), v(i + 1)).unwrap();
        }
        let mut tear = DeltaBatch::new();
        for i in 1..=spokes {
            tear.remove(v(0), v(i));
        }
        (b.build(), tear)
    }

    #[test]
    fn hub_split_flattens_hotspot_epochs() {
        // One hub with 24 incident removals, every helper with 1: the
        // split schedule must cost a small fraction of the unsplit one
        // while retiring the identical triangles. Free aggregation on
        // both sides isolates the broadcast phases.
        let (graph, tear) = hub_star(24);
        let run = |split: HubSplit| {
            let mut engine = DistributedTriangleEngine::from_graph(&graph)
                .with_hub_split(split)
                .with_aggregation(Aggregation::Free);
            assert_eq!(engine.hub_split(), split);
            let report = engine.apply(&tear).unwrap();
            assert!(engine.matches_oracle());
            (report, engine.last_batch_cost(), engine.triangles().clone())
        };
        let (unsplit_report, unsplit_cost, unsplit_set) = run(HubSplit::Off);
        let (split_report, split_cost, split_set) = run(HubSplit::Auto);
        assert_eq!(unsplit_report, split_report);
        assert_eq!(unsplit_set, split_set);
        // 24 hub deltas vs an average-load budget of 2: the unsplit
        // phase is hub-bound, the split one near-flat.
        assert!(
            split_cost.rounds * 2 <= unsplit_cost.rounds,
            "split {split_cost:?} should be at least 2x below unsplit {unsplit_cost:?}"
        );
        // Forcing the budget to 1 flattens as far as coverage allows.
        let (forced_report, forced_cost, forced_set) = run(HubSplit::Budget(1));
        assert_eq!(forced_report, split_report);
        assert_eq!(forced_set, split_set);
        assert!(forced_cost.rounds <= split_cost.rounds);
    }

    #[test]
    fn convergecast_accounts_the_merge_and_changes_no_results() {
        let g = Gnp::new(40, 0.15).seeded(7).generate();
        let mut free =
            DistributedTriangleEngine::from_graph(&g).with_aggregation(Aggregation::Free);
        let mut conv = DistributedTriangleEngine::from_graph(&g);
        assert_eq!(free.aggregation(), Aggregation::Free);
        assert_eq!(conv.aggregation(), Aggregation::Convergecast);
        for step in 0..6u32 {
            let mut b = DeltaBatch::new();
            for j in 0..9u32 {
                let a = (step * 5 + j * 7) % 40;
                let c = (step * 11 + j * 3 + 1) % 40;
                if a != c {
                    if (step + j) % 3 == 0 {
                        b.remove(v(a), v(c));
                    } else {
                        b.insert(v(a), v(c));
                    }
                }
            }
            let rf = free.apply(&b).unwrap();
            let rc = conv.apply(&b).unwrap();
            assert_eq!(rf, rc, "step {step}: aggregation must not change reports");
            assert_eq!(free.triangles(), conv.triangles(), "step {step}");
            // The free merge is unaccounted; the convergecast pays real
            // rounds and messages for the same information.
            assert_eq!(free.last_batch_cost().convergecast_rounds, 0);
            assert!(
                conv.last_batch_cost().convergecast_rounds > 0,
                "step {step}"
            );
            assert!(conv.last_batch_cost().rounds > free.last_batch_cost().rounds);
            assert!(conv.last_batch_cost().messages > free.last_batch_cost().messages);
        }
        assert!(conv.matches_oracle());
        assert!(conv.total_cost().convergecast_rounds > 0);
        assert_eq!(free.total_cost().convergecast_rounds, 0);
    }

    #[test]
    fn fully_cancelling_batches_cost_the_zero_round_floor_on_both_executors() {
        for executor in [SimExecutor::Sequential, SimExecutor::Threaded] {
            // A triangle {0,1,2} plus two spare nodes.
            let mut b = congest_graph::GraphBuilder::new(5);
            b.add_edge(v(0), v(1)).unwrap();
            b.add_edge(v(1), v(2)).unwrap();
            b.add_edge(v(0), v(2)).unwrap();
            let base = b.build();
            let mut engine = DistributedTriangleEngine::from_graph_with_executor(&base, executor);
            // One real batch first, so the floor demonstrably does not
            // reset earlier accounting.
            let mut real = DeltaBatch::new();
            real.insert(v(2), v(3));
            engine.apply(&real).unwrap();
            let epochs_before = engine.epochs();
            let cost_before = engine.total_cost();
            let last_before = engine.last_batch_cost();
            assert!(cost_before.rounds > 0);

            // insert+remove of an absent edge: the insert coalesces
            // away and the surviving remove classifies as a no-op —
            // zero effective deltas, zero-length broadcast phases.
            let mut cancel_absent = DeltaBatch::new();
            cancel_absent.insert(v(3), v(4)).remove(v(3), v(4));
            // remove+insert of a present edge: the remove coalesces
            // away and the surviving insert is already present.
            let mut cancel_present = DeltaBatch::new();
            cancel_present.remove(v(0), v(1)).insert(v(0), v(1));

            for (name, batch) in [("absent", &cancel_absent), ("present", &cancel_present)] {
                let r = engine.apply(batch).unwrap();
                let ctx = format!("executor {}, {name} flap", executor.name());
                assert_eq!(r.noops, 2, "{ctx}");
                assert_eq!(r.inserts_applied + r.removes_applied, 0, "{ctx}");
                assert_eq!(r.triangles_added + r.triangles_removed, 0, "{ctx}");
                // The documented floor: no epoch runs at all.
                assert_eq!(engine.epochs(), epochs_before, "{ctx}");
                assert_eq!(engine.total_cost(), cost_before, "{ctx}");
                assert_eq!(engine.last_batch_cost(), last_before, "{ctx}");
            }
            assert!(engine.matches_oracle());
            assert_eq!(engine.triangle_count(), 1);
        }
    }

    #[test]
    fn corrupt_injected_payload_surfaces_a_protocol_error() {
        // A truncated out-of-band payload lands in a node's round-0
        // inbox next to the real descriptor: the node must latch a
        // protocol error (instead of silently truncating ids) and the
        // coordinator must surface it from apply.
        let mut engine = DistributedTriangleEngine::new(8);
        let mut w = BitWriter::new();
        w.write_bits(3, 7); // far too short for a descriptor
        engine.sim.inject(v(2), w.finish());
        let mut b = DeltaBatch::new();
        b.insert(v(0), v(1));
        let err = engine.apply(&b).unwrap_err();
        match err {
            StreamError::Protocol { node, detail } => {
                assert_eq!(node, v(2));
                assert!(detail.contains("descriptor"), "detail: {detail}");
            }
            other => panic!("expected a protocol error, got {other:?}"),
        }
    }

    #[test]
    fn decode_rejects_degenerate_and_truncated_payloads() {
        let codec = IdCodec::new(8);
        // Degenerate edge {3, 3}.
        let mut w = BitWriter::new();
        codec.encode(&mut w, 3);
        codec.encode(&mut w, 3);
        let err = DynamicTriangleNode::decode_edges(codec, &w.finish(), 8).unwrap_err();
        assert!(err.contains("degenerate edge"), "err: {err}");
        // Trailing bits that are not a whole edge.
        let mut w = BitWriter::new();
        codec.encode(&mut w, 1);
        codec.encode(&mut w, 2);
        w.write_bits(0, 3);
        let err = DynamicTriangleNode::decode_edges(codec, &w.finish(), 8).unwrap_err();
        assert!(err.contains("trailing"), "err: {err}");
        // An id decoded against a wider domain than the network size.
        let wide = IdCodec::new(16);
        let mut w = BitWriter::new();
        wide.encode(&mut w, 12);
        wide.encode(&mut w, 1);
        let err = DynamicTriangleNode::decode_edges(wide, &w.finish(), 8).unwrap_err();
        assert!(err.contains("out of range"), "err: {err}");
    }

    #[test]
    fn aggregate_streams_round_trip_through_chunking() {
        let codec = IdCodec::new(64);
        let mut dead = TriangleSet::new();
        dead.insert(Triangle::new(v(0), v(1), v(2)));
        dead.insert(Triangle::new(v(3), v(10), v(40)));
        let mut born = TriangleSet::new();
        born.insert(Triangle::new(v(5), v(6), v(63)));
        let stream = DynamicTriangleNode::serialize_aggregate(codec, &dead, &born, false);
        // Chunk to a tiny budget and reassemble, exactly as a parent
        // node does.
        for bandwidth in [13usize, 20, 4096] {
            let chunks = DynamicTriangleNode::chunk_stream(&stream, bandwidth);
            let mut rebuilt = BitWriter::new();
            let mut finished = false;
            for chunk in &chunks {
                assert!(chunk.bit_len() <= bandwidth, "chunk over budget");
                assert!(!finished, "no chunks after the final one");
                let mut r = BitReader::new(chunk);
                finished = !r.read_bool().unwrap();
                copy_bits(&mut r, &mut rebuilt, chunk.bit_len() - 1);
            }
            assert!(finished);
            let (d, b) = DynamicTriangleNode::decode_aggregate(codec, 64, &rebuilt.finish(), false)
                .expect("round trip");
            assert_eq!(d, dead.iter().copied().collect::<Vec<_>>());
            assert_eq!(b, born.iter().copied().collect::<Vec<_>>());
        }
        // The empty aggregate is a single flag-only chunk.
        let empty = DynamicTriangleNode::serialize_aggregate(
            codec,
            &TriangleSet::new(),
            &TriangleSet::new(),
            false,
        );
        assert_eq!(empty.bit_len(), 0);
        let chunks = DynamicTriangleNode::chunk_stream(&empty, 16);
        assert_eq!(chunks.len(), 1);
        assert_eq!(chunks[0].bit_len(), 1);
        let (d, b) = DynamicTriangleNode::decode_aggregate(codec, 64, &empty, false).unwrap();
        assert!(d.is_empty() && b.is_empty());
    }

    #[test]
    fn split_and_convergecast_stay_in_lockstep_across_executors() {
        let g = Gnp::new(16, 0.25).seeded(33).generate();
        let build = |executor| {
            DistributedTriangleEngine::from_graph_with_executor(&g, executor)
                .with_hub_split(HubSplit::Budget(1))
                .with_aggregation(Aggregation::Convergecast)
        };
        let mut seq = build(SimExecutor::Sequential);
        let mut thr = build(SimExecutor::Threaded);
        for step in 0..4u32 {
            let mut b = DeltaBatch::new();
            for j in 0..8u32 {
                let a = (step * 3 + j * 5) % 16;
                let c = (step * 7 + j * 11 + 1) % 16;
                if a != c {
                    if (step + j) % 3 == 0 {
                        b.remove(v(a), v(c));
                    } else {
                        b.insert(v(a), v(c));
                    }
                }
            }
            let rs = seq.apply(&b).unwrap();
            let rt = thr.apply(&b).unwrap();
            assert_eq!(rs, rt, "step {step}");
            assert_eq!(seq.triangles(), thr.triangles(), "step {step}");
            assert_eq!(seq.last_batch_cost(), thr.last_batch_cost(), "step {step}");
        }
        assert!(seq.matches_oracle() && thr.matches_oracle());
        assert_eq!(seq.total_cost(), thr.total_cost());
        assert!(seq.total_cost().convergecast_rounds > 0);
    }

    #[test]
    fn debug_names_the_scheduling_and_aggregation_modes() {
        let engine = DistributedTriangleEngine::new(4)
            .with_hub_split(HubSplit::Off)
            .with_aggregation(Aggregation::Free);
        let s = format!("{engine:?}");
        assert!(s.contains("split=off"));
        assert!(s.contains("agg=free"));
        assert_eq!(HubSplit::Auto.name(), "auto");
        assert_eq!(HubSplit::Budget(3).name(), "budget");
        assert_eq!(Aggregation::Convergecast.name(), "convergecast");
        assert_eq!(HubSplit::default(), HubSplit::Auto);
        assert_eq!(Aggregation::default(), Aggregation::Convergecast);
    }
}
