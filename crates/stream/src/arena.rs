//! The flat-memory neighbour-list arena behind both incremental engines.
//!
//! [`NeighborArena`] stores every neighbour list of an engine (or of
//! one shard) as a contiguous slice inside a single
//! backing buffer — the mutable analogue of the CSR layout
//! `congest_graph::Graph` freezes. Compared to the previous
//! `Vec<Vec<NodeId>>` it removes one heap pointer chase per node on the
//! intersection hot path and keeps lists that are intersected together
//! close in memory.
//!
//! Layout and lifecycle:
//!
//! * **Slots** — each list is addressed by a dense `u32` slot id (the
//!   node index for [`TriangleIndex`](crate::TriangleIndex), the local
//!   index inside a shard for the sharded engine). A slot records its
//!   `(offset, len, size class)` into the shared buffer.
//! * **Power-of-two slabs** — storage is granted in slabs of capacity
//!   `2^class`. A list that outgrows its slab moves to the next class;
//!   a list removed down to empty returns its slab. Both hand the old
//!   slab to the free list instead of leaking it.
//! * **Epoch-versioned free list** — a slab freed in the current epoch
//!   is *quarantined* and stamped with the epoch that freed it: it only
//!   becomes allocatable after an epoch advance whose *reclaim horizon*
//!   has moved past that stamp (the engines advance once per applied
//!   batch). Within an epoch, freed slabs are therefore never rewritten
//!   by another slot's growth, so any read view taken at the start of
//!   the epoch stays byte-stable even while mutations proceed. When the
//!   serve layer holds epoch-stamped reader leases
//!   ([`TriangleServer`](crate::TriangleServer)),
//!   [`advance_epoch_held`](NeighborArena::advance_epoch_held) keeps
//!   every slab freed since the oldest outstanding lease quarantined
//!   (and defers compaction), so the slab layout a lease can still see
//!   is never recycled underneath it.
//! * **Compaction** — when promoted free slabs hold more than half the
//!   buffer, the epoch boundary rewrites every live list tightly into a
//!   fresh buffer and resets the free lists. Heavy remove/re-insert
//!   churn therefore cannot grow the buffer without bound.
//!
//! The arena is *the* shared adjacency-mutation implementation:
//! [`insert`](NeighborArena::insert) / [`remove`](NeighborArena::remove)
//! replace the three hand-rolled `sorted_insert` / `sorted_remove` /
//! `binary_search` paths the central index and the shards used to keep
//! in parallel.

use congest_graph::NodeId;

/// Size class marking a slot that currently owns no slab (empty list).
const NO_SLAB: u8 = u8::MAX;

/// Buffers below this many elements never compact: rewriting a tiny
/// arena costs more than the slack it reclaims.
const COMPACT_MIN_ELEMS: usize = 1_024;

/// Capacity of a size class in elements.
fn class_capacity(class: u8) -> usize {
    1usize << class
}

/// Smallest size class whose slab holds `len` elements (`len >= 1`).
fn class_for(len: usize) -> u8 {
    debug_assert!(len >= 1);
    (usize::BITS - (len - 1).leading_zeros()) as u8
}

/// One slot's view into the backing buffer.
#[derive(Debug, Clone, Copy)]
struct SlotEntry {
    /// Offset of the slot's slab in the backing buffer.
    off: u32,
    /// Live elements (`len <= 2^class`).
    len: u32,
    /// Size class of the slab, or [`NO_SLAB`].
    class: u8,
}

impl SlotEntry {
    const EMPTY: SlotEntry = SlotEntry {
        off: 0,
        len: 0,
        class: NO_SLAB,
    };
}

/// Free slabs of one size class, split by the epoch discipline.
#[derive(Debug, Clone, Default)]
struct FreeClass {
    /// Freed behind the reclaim horizon: allocatable now.
    ready: Vec<u32>,
    /// `(epoch freed, offset)` pairs still quarantined: allocatable once
    /// an epoch advance's reclaim horizon moves past the stamp.
    quarantine: Vec<(u64, u32)>,
}

/// Point-in-time health counters of one arena (or, summed, of every
/// shard's arena), exported through the `congest-obs` registry by the
/// workload runner.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Bytes of backing buffer currently allocated (live + free slack).
    pub slab_bytes: usize,
    /// Bytes of live neighbour data.
    pub live_bytes: usize,
    /// Slabs parked on the free lists (ready + quarantined).
    pub free_slabs: usize,
    /// Capacity of those parked slabs, in bytes (the free-list
    /// occupancy compaction watches).
    pub free_bytes: usize,
    /// Compactions performed over the arena's lifetime.
    pub compactions: u64,
}

impl ArenaStats {
    /// Accumulates `other` (used to total per-shard arenas).
    pub fn absorb(&mut self, other: &ArenaStats) {
        self.slab_bytes += other.slab_bytes;
        self.live_bytes += other.live_bytes;
        self.free_slabs += other.free_slabs;
        self.free_bytes += other.free_bytes;
        self.compactions += other.compactions;
    }
}

/// Slot-indexed CSR-style arena of sorted neighbour lists (see the
/// module docs for layout and lifecycle).
#[derive(Debug, Clone)]
pub struct NeighborArena {
    /// The one backing buffer every list lives in.
    buf: Vec<NodeId>,
    slots: Vec<SlotEntry>,
    /// Free slabs indexed by size class.
    free: Vec<FreeClass>,
    /// Total live elements across all slots.
    live: usize,
    epoch: u64,
    compactions: u64,
}

impl NeighborArena {
    /// An arena of `slots` empty lists.
    pub fn new(slots: usize) -> Self {
        NeighborArena {
            buf: Vec::new(),
            slots: vec![SlotEntry::EMPTY; slots],
            free: Vec::new(),
            live: 0,
            epoch: 0,
            compactions: 0,
        }
    }

    /// Number of slots.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// The sorted neighbour list at `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn neighbors(&self, slot: usize) -> &[NodeId] {
        let entry = self.slots[slot];
        &self.buf[entry.off as usize..entry.off as usize + entry.len as usize]
    }

    /// Length of the list at `slot` (the node's degree).
    pub fn len_of(&self, slot: usize) -> usize {
        self.slots[slot].len as usize
    }

    /// Whether `value` is in the list at `slot`.
    pub fn contains(&self, slot: usize, value: NodeId) -> bool {
        self.neighbors(slot).binary_search(&value).is_ok()
    }

    /// Total live elements across all slots (the sharded engine's
    /// half-edge count, now `O(1)`).
    pub fn total_len(&self) -> usize {
        self.live
    }

    /// Inserts `value` into the sorted list at `slot`; returns whether
    /// the list changed (duplicates are no-ops).
    pub fn insert(&mut self, slot: usize, value: NodeId) -> bool {
        let entry = self.slots[slot];
        let (off, len) = (entry.off as usize, entry.len as usize);
        let pos = match self.buf[off..off + len].binary_search(&value) {
            Ok(_) => return false,
            Err(pos) => pos,
        };
        let capacity = if entry.class == NO_SLAB {
            0
        } else {
            class_capacity(entry.class)
        };
        if len < capacity {
            // Room in the current slab: shift the tail up in place.
            self.buf.copy_within(off + pos..off + len, off + pos + 1);
            self.buf[off + pos] = value;
            self.slots[slot].len += 1;
        } else {
            // Grow into the next size class, writing the new element
            // into the copy's gap; the old slab is quarantined, not
            // reused this epoch.
            let class = if entry.class == NO_SLAB {
                0
            } else {
                entry.class + 1
            };
            let new_off = self.alloc(class) as usize;
            self.buf.copy_within(off..off + pos, new_off);
            self.buf[new_off + pos] = value;
            self.buf
                .copy_within(off + pos..off + len, new_off + pos + 1);
            if entry.class != NO_SLAB {
                self.release(entry.off, entry.class);
            }
            self.slots[slot] = SlotEntry {
                off: new_off as u32,
                len: (len + 1) as u32,
                class,
            };
        }
        self.live += 1;
        true
    }

    /// Removes `value` from the sorted list at `slot`; returns whether
    /// the list changed (absent values are no-ops). A list removed down
    /// to empty returns its slab to the (quarantined) free list.
    pub fn remove(&mut self, slot: usize, value: NodeId) -> bool {
        let entry = self.slots[slot];
        let (off, len) = (entry.off as usize, entry.len as usize);
        let pos = match self.buf[off..off + len].binary_search(&value) {
            Ok(pos) => pos,
            Err(_) => return false,
        };
        self.buf.copy_within(off + pos + 1..off + len, off + pos);
        self.slots[slot].len -= 1;
        self.live -= 1;
        if self.slots[slot].len == 0 {
            self.release(entry.off, entry.class);
            self.slots[slot] = SlotEntry::EMPTY;
        }
        true
    }

    /// Replaces the list at `slot` wholesale with the (sorted,
    /// duplicate-free) `neighbors` — used when seeding from a static
    /// graph and when the record pipeline lands a prepared post-batch
    /// list. The old slab is quarantined like any other free.
    pub fn seed(&mut self, slot: usize, neighbors: &[NodeId]) {
        debug_assert!(neighbors.is_sorted());
        let entry = self.slots[slot];
        self.live -= entry.len as usize;
        if entry.class != NO_SLAB {
            self.release(entry.off, entry.class);
        }
        if neighbors.is_empty() {
            self.slots[slot] = SlotEntry::EMPTY;
        } else {
            let class = class_for(neighbors.len());
            let off = self.alloc(class) as usize;
            self.buf[off..off + neighbors.len()].copy_from_slice(neighbors);
            self.slots[slot] = SlotEntry {
                off: off as u32,
                len: neighbors.len() as u32,
                class,
            };
        }
        self.live += neighbors.len();
    }

    /// Ends the current mutation epoch: quarantined slabs become
    /// allocatable, and the arena compacts if free slack has outgrown
    /// the live data. The engines call this once per applied batch,
    /// while they hold the arena exclusively. Equivalent to
    /// [`advance_epoch_held`](NeighborArena::advance_epoch_held) with a
    /// hold of zero epochs.
    pub fn advance_epoch(&mut self) {
        self.advance_epoch_held(0);
    }

    /// Ends the current mutation epoch while readers may still hold
    /// leases on recent epochs: slabs freed during the last `hold`
    /// epochs (counting the one just ended) stay quarantined, older
    /// ones become allocatable. `hold == 0` means no lease is
    /// outstanding and reproduces [`advance_epoch`]'s promote-everything
    /// behaviour; a lease pinned `k` batches ago passes `hold == k` so
    /// every slab its view can still reference keeps its bytes.
    /// Compaction (which rewrites the whole buffer) only runs when
    /// nothing is held.
    ///
    /// [`advance_epoch`]: NeighborArena::advance_epoch
    pub fn advance_epoch_held(&mut self, hold: u64) {
        self.epoch += 1;
        let horizon = self.epoch.saturating_sub(hold);
        for class in &mut self.free {
            let mut i = 0;
            while i < class.quarantine.len() {
                if class.quarantine[i].0 < horizon {
                    let (_, off) = class.quarantine.swap_remove(i);
                    class.ready.push(off);
                } else {
                    i += 1;
                }
            }
        }
        if hold == 0 {
            self.maybe_compact();
        }
    }

    /// Current health counters.
    pub fn stats(&self) -> ArenaStats {
        let elem = std::mem::size_of::<NodeId>();
        let (free_slabs, free_elems) = self.free_totals();
        ArenaStats {
            slab_bytes: self.buf.len() * elem,
            live_bytes: self.live * elem,
            free_slabs,
            free_bytes: free_elems * elem,
            compactions: self.compactions,
        }
    }

    /// `(count, total capacity)` of every parked slab.
    fn free_totals(&self) -> (usize, usize) {
        let mut slabs = 0usize;
        let mut elems = 0usize;
        for (class, free) in self.free.iter().enumerate() {
            let n = free.ready.len() + free.quarantine.len();
            slabs += n;
            elems += n << class;
        }
        (slabs, elems)
    }

    /// Grants a slab of `class`: a ready free slab if one exists, fresh
    /// buffer tail otherwise.
    fn alloc(&mut self, class: u8) -> u32 {
        if let Some(free) = self.free.get_mut(class as usize) {
            if let Some(off) = free.ready.pop() {
                return off;
            }
        }
        let off = self.buf.len();
        let capacity = class_capacity(class);
        assert!(
            off + capacity <= u32::MAX as usize,
            "neighbour arena exceeds u32 addressing"
        );
        self.buf.resize(off + capacity, NodeId(0));
        off as u32
    }

    /// Parks a slab on its class's quarantine list, stamped with the
    /// epoch that freed it.
    fn release(&mut self, off: u32, class: u8) {
        if self.free.len() <= class as usize {
            self.free
                .resize_with(class as usize + 1, FreeClass::default);
        }
        self.free[class as usize].quarantine.push((self.epoch, off));
    }

    /// Rewrites every live list tightly into a fresh buffer when parked
    /// slabs hold more than half the current one. Only called from the
    /// epoch boundary, where the caller holds the arena exclusively.
    fn maybe_compact(&mut self) {
        let (_, free_elems) = self.free_totals();
        if self.buf.len() < COMPACT_MIN_ELEMS || free_elems * 2 <= self.buf.len() {
            return;
        }
        let mut fresh: Vec<NodeId> = Vec::with_capacity(self.live.next_power_of_two());
        for entry in &mut self.slots {
            let len = entry.len as usize;
            if len == 0 {
                *entry = SlotEntry::EMPTY;
                continue;
            }
            let class = class_for(len);
            let off = fresh.len();
            fresh.extend_from_slice(&self.buf[entry.off as usize..entry.off as usize + len]);
            fresh.resize(off + class_capacity(class), NodeId(0));
            *entry = SlotEntry {
                off: off as u32,
                len: len as u32,
                class,
            };
        }
        self.buf = fresh;
        self.free.clear();
        self.compactions += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> NodeId {
        NodeId(i)
    }

    fn ids(values: &[u32]) -> Vec<NodeId> {
        values.iter().copied().map(NodeId).collect()
    }

    #[test]
    fn size_classes_round_up_to_powers_of_two() {
        assert_eq!(class_for(1), 0);
        assert_eq!(class_for(2), 1);
        assert_eq!(class_for(3), 2);
        assert_eq!(class_for(4), 2);
        assert_eq!(class_for(5), 3);
        assert_eq!(class_for(1024), 10);
        assert_eq!(class_for(1025), 11);
        assert_eq!(class_capacity(class_for(7)), 8);
    }

    #[test]
    fn insert_remove_contains_match_a_sorted_vec() {
        let mut arena = NeighborArena::new(2);
        let mut oracle: Vec<NodeId> = Vec::new();
        let values = [7u32, 3, 9, 3, 1, 12, 5, 8, 2, 30, 6];
        for &x in &values {
            let fresh = !oracle.contains(&v(x));
            assert_eq!(arena.insert(0, v(x)), fresh, "insert {x}");
            if fresh {
                oracle.push(v(x));
                oracle.sort_unstable();
            }
            assert_eq!(arena.neighbors(0), &oracle[..]);
        }
        assert_eq!(arena.len_of(0), oracle.len());
        assert_eq!(arena.total_len(), oracle.len());
        assert!(arena.contains(0, v(9)));
        assert!(!arena.contains(0, v(99)));
        assert!(arena.neighbors(1).is_empty());

        assert!(arena.remove(0, v(9)));
        assert!(!arena.remove(0, v(9)));
        oracle.retain(|&w| w != v(9));
        assert_eq!(arena.neighbors(0), &oracle[..]);
    }

    #[test]
    fn emptied_slots_release_their_slabs() {
        let mut arena = NeighborArena::new(1);
        for i in 0..8u32 {
            arena.insert(0, v(i));
        }
        for i in 0..8u32 {
            arena.remove(0, v(i));
        }
        assert!(arena.neighbors(0).is_empty());
        assert_eq!(arena.total_len(), 0);
        // Growth left 1-, 2- and 4-slabs behind plus the final 8-slab.
        assert!(arena.stats().free_slabs >= 4);
        assert!(arena.stats().free_bytes > 0);
    }

    #[test]
    fn free_slabs_are_quarantined_until_the_epoch_turns() {
        let mut arena = NeighborArena::new(2);
        arena.seed(0, &ids(&[1, 2, 3, 4]));
        let slab_before = arena.stats().slab_bytes;
        arena.seed(0, &[]); // frees the 4-slab into quarantine
                            // A same-epoch allocation of the same class must NOT reuse it.
        arena.seed(1, &ids(&[5, 6, 7]));
        assert!(arena.stats().slab_bytes > slab_before);
        // After the epoch turns, the promoted slab is reused.
        arena.advance_epoch();
        let slab_mid = arena.stats().slab_bytes;
        arena.seed(0, &ids(&[8, 9, 10, 11]));
        assert_eq!(arena.stats().slab_bytes, slab_mid, "ready slab reused");
        assert_eq!(arena.neighbors(0), ids(&[8, 9, 10, 11]));
        assert_eq!(arena.neighbors(1), ids(&[5, 6, 7]));
    }

    #[test]
    fn held_epochs_keep_freed_slabs_quarantined() {
        let mut arena = NeighborArena::new(2);
        arena.seed(0, &ids(&[1, 2, 3, 4]));
        arena.seed(0, &[]); // frees the 4-slab, stamped epoch 0
                            // A lease is pinned at epoch 0: hold it across the advance.
        arena.advance_epoch_held(1);
        let slab_before = arena.stats().slab_bytes;
        arena.seed(1, &ids(&[5, 6, 7, 8])); // same class; held slab must not be reused
        assert!(
            arena.stats().slab_bytes > slab_before,
            "held slab untouched"
        );
        // The lease is still at epoch 0 one batch later: hold grows to 2.
        arena.seed(1, &[]); // frees the second slab, stamped epoch 1
        arena.advance_epoch_held(2);
        let slab_mid = arena.stats().slab_bytes;
        arena.seed(0, &ids(&[9, 10, 11, 12]));
        assert!(arena.stats().slab_bytes > slab_mid, "both slabs still held");
        // The lease drops: a plain advance promotes everything and the
        // next same-class allocation reuses a ready slab.
        arena.advance_epoch();
        let slab_free = arena.stats().slab_bytes;
        arena.seed(1, &ids(&[13, 14, 15, 16]));
        assert_eq!(arena.stats().slab_bytes, slab_free, "promoted slab reused");
        assert_eq!(arena.neighbors(0), ids(&[9, 10, 11, 12]));
        assert_eq!(arena.neighbors(1), ids(&[13, 14, 15, 16]));
    }

    #[test]
    fn compaction_is_deferred_while_an_epoch_is_held() {
        let mut arena = NeighborArena::new(8);
        for slot in 0..8 {
            let big: Vec<NodeId> = (0..512).map(|i| v(i * 2)).collect();
            arena.seed(slot, &big);
        }
        for slot in 0..8 {
            arena.seed(slot, &ids(&[1, 3, 5]));
        }
        let before = arena.stats();
        assert!(before.free_bytes * 2 > before.slab_bytes);
        // A lease pins the previous epoch: the boundary must not rewrite
        // the buffer the lease's view points into.
        arena.advance_epoch_held(1);
        assert_eq!(arena.stats().compactions, 0, "compaction deferred");
        // Once nothing is held, the next boundary compacts as usual.
        arena.advance_epoch();
        assert!(arena.stats().compactions >= 1, "compaction caught up");
        for slot in 0..8 {
            assert_eq!(arena.neighbors(slot), ids(&[1, 3, 5]), "slot {slot}");
        }
    }

    #[test]
    fn seed_replaces_and_tracks_live_totals() {
        let mut arena = NeighborArena::new(3);
        arena.seed(0, &ids(&[2, 4, 6]));
        arena.seed(1, &ids(&[1]));
        assert_eq!(arena.total_len(), 4);
        arena.seed(0, &ids(&[5]));
        assert_eq!(arena.neighbors(0), ids(&[5]));
        assert_eq!(arena.total_len(), 2);
        arena.seed(1, &[]);
        assert_eq!(arena.total_len(), 1);
    }

    #[test]
    fn churn_triggers_compaction_and_preserves_content() {
        let mut arena = NeighborArena::new(8);
        // Grow every slot large, then shrink to tiny lists across
        // epochs: the parked large slabs eventually dominate the buffer
        // and the epoch boundary compacts.
        for slot in 0..8 {
            let big: Vec<NodeId> = (0..512).map(|i| v(i * 2)).collect();
            arena.seed(slot, &big);
        }
        for slot in 0..8 {
            arena.seed(slot, &ids(&[1, 3, 5]));
        }
        let before = arena.stats();
        assert!(before.free_bytes * 2 > before.slab_bytes);
        arena.advance_epoch();
        let after = arena.stats();
        assert!(after.compactions >= 1, "compaction ran");
        assert!(after.slab_bytes < before.slab_bytes, "buffer shrank");
        assert_eq!(after.free_slabs, 0, "free lists reset");
        for slot in 0..8 {
            assert_eq!(arena.neighbors(slot), ids(&[1, 3, 5]), "slot {slot}");
        }
        assert_eq!(arena.total_len(), 24);
    }

    #[test]
    fn stats_absorb_sums_fields() {
        let mut arena = NeighborArena::new(1);
        arena.seed(0, &ids(&[1, 2, 3]));
        let one = arena.stats();
        let mut total = ArenaStats::default();
        total.absorb(&one);
        total.absorb(&one);
        assert_eq!(total.slab_bytes, 2 * one.slab_bytes);
        assert_eq!(total.live_bytes, 2 * one.live_bytes);
    }

    #[test]
    fn zero_slot_arena_is_fine() {
        let arena = NeighborArena::new(0);
        assert_eq!(arena.slot_count(), 0);
        assert_eq!(arena.total_len(), 0);
        assert_eq!(arena.stats(), ArenaStats::default());
    }
}
