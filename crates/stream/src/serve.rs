//! The serving layer: epoch-stamped read snapshots over the sharded
//! engine.
//!
//! [`TriangleServer`] wraps a [`ShardedTriangleIndex`] and separates the
//! two roles a production deployment runs concurrently:
//!
//! * **One writer** owns the server and calls
//!   [`apply`](TriangleServer::apply); each batch applies through the
//!   engine's normal pipeline and then **publishes** a new epoch — an
//!   O(S) handle-copy of the shard store (the shards themselves are
//!   shared `Arc`s) plus the shared per-node support vector.
//! * **Any number of readers** hold a cloneable [`ServeHandle`] and call
//!   [`lease`](ServeHandle::lease): one mutex lock and an `Arc` clone
//!   pins the last fully-published epoch. Every query on the resulting
//!   [`Lease`] — triangle count, per-node/per-edge support, *is this
//!   edge in a triangle*, top-k-support nodes — answers against that
//!   frozen view, no matter how many batches the writer applies
//!   meanwhile.
//!
//! Neither side waits on the other:
//!
//! * Readers never block the write pipeline — a lease acquire is a
//!   sub-microsecond critical section, and queries run entirely on the
//!   reader's own `Arc`s.
//! * The writer never waits on readers — publishing swaps the shared
//!   view pointer; it does not reclaim anything a lease still uses.
//!   Mutation is copy-on-write per shard ([`Arc::make_mut`]): a shard
//!   pinned by a published view is cloned once when next touched (paid
//!   on the worker that records it, in parallel across shards), and the
//!   arena's epoch-stamped free lists additionally defer slab reuse and
//!   compaction by `next_epoch − oldest_lease_epoch`
//!   ([`NeighborArena::advance_epoch_held`](crate::NeighborArena::advance_epoch_held)),
//!   so memory behind old views stays stable until the oldest lease
//!   advances.
//!
//! A dropped [`Lease`] retires itself from the server's epoch table;
//! the next publish then lets reclamation catch up. Observability:
//! `serve/lease_acquire`, `serve/query` and `serve/publish` span
//! families, plus the `serve.active_leases`,
//! `serve.oldest_lease_epoch_lag` and `serve.lease_age_epochs_max`
//! gauges (updated writer-side at each publish, so the query path stays
//! contention-free). A reader that acquires a lease and forgets it
//! does not error anywhere — it silently pins arena reclamation — so
//! each publish whose oldest lease lags the writer by more than
//! [`STALE_LEASE_WARN_EPOCHS`] epochs also bumps the
//! `serve.stale_lease_warnings` counter, making the abandoned lease
//! visible in any metrics snapshot.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard};

use congest_graph::{count_common, AdjacencyView, NodeId};

use crate::delta::DeltaBatch;
use crate::index::{ApplyReport, StreamError};
use crate::shard::ShardStore;
use crate::sharded::ShardedTriangleIndex;

/// Epochs the oldest outstanding lease may lag the writer before each
/// further publish counts a `serve.stale_lease_warnings` tick. Sixteen
/// epochs of copy-on-write shards and quarantined slabs is already far
/// beyond what a well-behaved reader session holds; a lease older than
/// that is almost certainly leaked.
pub const STALE_LEASE_WARN_EPOCHS: u64 = 16;

/// One published, immutable view of the indexed graph.
///
/// Building one is O(S): the shard store is a vector of shared `Arc`s
/// and the support vector is shared copy-on-write, so publishing copies
/// handles, not adjacency.
struct EpochView {
    /// The publish counter this view was stamped with.
    epoch: u64,
    /// Shared shard handles; the writer copy-on-writes any shard it
    /// touches after this view was published.
    store: ShardStore,
    /// Live triangle count at the stamp.
    triangle_count: usize,
    /// Present undirected edges at the stamp.
    edge_count: usize,
    /// Per-node triangle-support counters at the stamp.
    support: Arc<Vec<u32>>,
}

/// Reader-side bookkeeping, behind the server's single mutex.
struct ServeState {
    /// The most recently published view.
    view: Arc<EpochView>,
    /// Outstanding leases per epoch (entries removed when they hit 0),
    /// so the oldest outstanding epoch is `O(log e)` away.
    leases: BTreeMap<u64, usize>,
    /// Total outstanding leases (the sum of `leases` values).
    active: usize,
}

/// What the writer and every handle share.
struct ServeShared {
    state: Mutex<ServeState>,
}

impl ServeShared {
    /// Locks the reader table; a reader that panicked mid-drop only
    /// poisons bookkeeping integers, so the poison is ignored.
    fn lock(&self) -> MutexGuard<'_, ServeState> {
        match self.state.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// The writer's end of the serving layer: owns the engine, applies
/// batches, publishes epochs.
///
/// ```
/// use congest_graph::generators::Gnp;
/// use congest_stream::{DeltaBatch, ShardedTriangleIndex, TriangleServer};
///
/// let graph = Gnp::new(64, 0.1).seeded(1).generate();
/// let mut server = TriangleServer::new(ShardedTriangleIndex::from_graph(&graph, 4));
/// let handle = server.handle();
///
/// let lease = handle.lease(); // pins the pre-batch epoch
/// let before = lease.triangle_count();
///
/// let mut batch = DeltaBatch::new();
/// batch.insert(congest_graph::NodeId(0), congest_graph::NodeId(1));
/// server.apply(&batch).unwrap(); // publishes a new epoch, does not wait
///
/// assert_eq!(lease.triangle_count(), before); // the old lease is frozen
/// assert_eq!(handle.lease().epoch(), lease.epoch() + 1);
/// ```
pub struct TriangleServer {
    engine: ShardedTriangleIndex,
    shared: Arc<ServeShared>,
    /// The last published epoch (one publish per applied batch).
    epoch: u64,
}

impl TriangleServer {
    /// Wraps an engine and publishes its current state as epoch 0.
    pub fn new(engine: ShardedTriangleIndex) -> Self {
        let view = Arc::new(EpochView {
            epoch: 0,
            store: engine.clone_store(),
            triangle_count: engine.triangle_count(),
            edge_count: engine.edge_count(),
            support: engine.support_counts(),
        });
        TriangleServer {
            engine,
            shared: Arc::new(ServeShared {
                state: Mutex::new(ServeState {
                    view,
                    leases: BTreeMap::new(),
                    active: 0,
                }),
            }),
            epoch: 0,
        }
    }

    /// A cloneable reader handle onto the server's published epochs.
    pub fn handle(&self) -> ServeHandle {
        ServeHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// The last published epoch (0 until the first
    /// [`apply`](TriangleServer::apply)).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The wrapped engine (reads see the *live* state, which may be
    /// ahead of the published epoch only inside `apply`; between calls
    /// the two coincide).
    pub fn engine(&self) -> &ShardedTriangleIndex {
        &self.engine
    }

    /// Unwraps the server, dropping the lease table. Outstanding leases
    /// keep their views alive independently.
    pub fn into_engine(self) -> ShardedTriangleIndex {
        self.engine
    }

    /// Outstanding leases across all epochs.
    pub fn active_leases(&self) -> usize {
        self.shared.lock().active
    }

    /// The oldest epoch any outstanding lease pins (`None` with no
    /// leases out).
    pub fn oldest_lease_epoch(&self) -> Option<u64> {
        self.shared.lock().leases.keys().next().copied()
    }

    /// Applies one batch through the engine and publishes the result as
    /// the next epoch. The arena reclaim lag is set first, so slabs the
    /// batch frees stay quarantined until the oldest outstanding lease
    /// advances past the epochs that could still read them.
    ///
    /// # Errors
    ///
    /// Exactly [`ShardedTriangleIndex::apply`]'s errors; on error
    /// nothing is published and the epoch does not advance.
    pub fn apply(&mut self, batch: &DeltaBatch) -> Result<ApplyReport, StreamError> {
        let next = self.epoch + 1;
        let hold = match self.oldest_lease_epoch() {
            Some(oldest) => next.saturating_sub(oldest),
            None => 0,
        };
        self.engine.set_reclaim_lag(hold);
        let report = self.engine.apply(batch)?;
        self.publish();
        Ok(report)
    }

    /// Stamps the engine's current state as the next epoch and swaps it
    /// in for new leases — an O(S) handle-copy; readers holding older
    /// epochs are unaffected. Also the single place the serve gauges
    /// are updated, keeping the query path free of registry traffic.
    fn publish(&mut self) {
        congest_obs::span!("serve", "publish");
        self.epoch += 1;
        let view = Arc::new(EpochView {
            epoch: self.epoch,
            store: self.engine.clone_store(),
            triangle_count: self.engine.triangle_count(),
            edge_count: self.engine.edge_count(),
            support: self.engine.support_counts(),
        });
        let (active, oldest) = {
            let mut state = self.shared.lock();
            state.view = view;
            (state.active, state.leases.keys().next().copied())
        };
        congest_obs::gauge_set("serve.active_leases", active as f64);
        let age = oldest.map_or(0, |o| self.epoch - o);
        congest_obs::gauge_set("serve.oldest_lease_epoch_lag", age as f64);
        // The same quantity under the name dashboards alert on: the age
        // of the oldest outstanding lease, in epochs. Past the warning
        // threshold every publish ticks the counter, so an abandoned
        // lease shows up as a *growing* number, not just a high gauge a
        // later quiet period would overwrite.
        congest_obs::gauge_set("serve.lease_age_epochs_max", age as f64);
        if age > STALE_LEASE_WARN_EPOCHS {
            congest_obs::counter_add("serve.stale_lease_warnings", 1);
        }
    }
}

impl std::fmt::Debug for TriangleServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "TriangleServer(epoch={}, active_leases={}, engine={:?})",
            self.epoch,
            self.active_leases(),
            self.engine,
        )
    }
}

/// A cheap, cloneable reader handle; clone one per client session or
/// reader thread.
#[derive(Clone)]
pub struct ServeHandle {
    shared: Arc<ServeShared>,
}

impl ServeHandle {
    /// Pins the most recently published epoch: one lock, one `Arc`
    /// clone, one counter bump. The returned [`Lease`] answers every
    /// query against that frozen view until dropped.
    pub fn lease(&self) -> Lease {
        congest_obs::span!("serve", "lease_acquire");
        let view = {
            let mut state = self.shared.lock();
            let view = Arc::clone(&state.view);
            *state.leases.entry(view.epoch).or_insert(0) += 1;
            state.active += 1;
            view
        };
        Lease {
            view,
            shared: Arc::clone(&self.shared),
        }
    }
}

impl std::fmt::Debug for ServeHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ServeHandle(epoch={})", self.shared.lock().view.epoch)
    }
}

/// A read view pinned to one published epoch.
///
/// Every accessor answers against the leased epoch's state — applied
/// batches published after the acquire are invisible — and the lease is
/// also an [`AdjacencyView`], so the centralized oracle (and any other
/// view-generic algorithm) runs on it directly.
pub struct Lease {
    view: Arc<EpochView>,
    shared: Arc<ServeShared>,
}

impl Lease {
    /// The epoch this lease pins.
    pub fn epoch(&self) -> u64 {
        self.view.epoch
    }

    /// Live triangles at the leased epoch.
    pub fn triangle_count(&self) -> usize {
        congest_obs::span!("serve", "query");
        self.view.triangle_count
    }

    /// Triangles containing `node` at the leased epoch — O(1) off the
    /// published support vector.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn node_support(&self, node: NodeId) -> usize {
        congest_obs::span!("serve", "query");
        self.view.support[node.index()] as usize
    }

    /// Triangles containing the edge `{a, b}` at the leased epoch — one
    /// sorted-list intersection on the leased adjacency; 0 when the
    /// edge is absent.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range.
    pub fn edge_support(&self, a: NodeId, b: NodeId) -> usize {
        congest_obs::span!("serve", "query");
        if !self.view.store.has_edge(a, b) {
            return 0;
        }
        count_common(self.view.store.neighbors(a), self.view.store.neighbors(b))
    }

    /// Whether `{a, b}` is an edge of at least one triangle at the
    /// leased epoch.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range.
    pub fn edge_in_triangle(&self, a: NodeId, b: NodeId) -> bool {
        self.edge_support(a, b) > 0
    }

    /// The `k` nodes with the highest triangle support at the leased
    /// epoch, highest first (ties broken by node id, ascending).
    /// O(n + k log k) via selection, so a dashboard-sized `k` does not
    /// sort the whole vector.
    pub fn top_k_support(&self, k: usize) -> Vec<(NodeId, u32)> {
        congest_obs::span!("serve", "query");
        let counts = &self.view.support;
        let mut order: Vec<u32> = (0..counts.len() as u32).collect();
        let rank = |&a: &u32, &b: &u32| counts[b as usize].cmp(&counts[a as usize]).then(a.cmp(&b));
        let k = k.min(order.len());
        if k == 0 {
            return Vec::new();
        }
        if k < order.len() {
            order.select_nth_unstable_by(k - 1, rank);
            order.truncate(k);
        }
        order.sort_unstable_by(rank);
        order
            .into_iter()
            .map(|i| (NodeId(i), counts[i as usize]))
            .collect()
    }
}

/// The lease *is* an adjacency view of the leased epoch: the oracle and
/// the CONGEST drivers run on the frozen state directly.
impl AdjacencyView for Lease {
    fn node_count(&self) -> usize {
        self.view.store.node_count()
    }

    fn neighbors(&self, node: NodeId) -> &[NodeId] {
        self.view.store.neighbors(node)
    }

    fn edge_count(&self) -> usize {
        self.view.edge_count
    }

    fn degree(&self, node: NodeId) -> usize {
        self.view.store.degree(node)
    }

    fn has_edge(&self, a: NodeId, b: NodeId) -> bool {
        self.view.store.has_edge(a, b)
    }
}

impl Drop for Lease {
    /// Retires this lease from the server's epoch table; once an
    /// epoch's count hits zero the next publish lets arena reclamation
    /// advance past it.
    fn drop(&mut self) {
        let mut state = self.shared.lock();
        if let Some(count) = state.leases.get_mut(&self.view.epoch) {
            *count -= 1;
            if *count == 0 {
                state.leases.remove(&self.view.epoch);
            }
            state.active -= 1;
        }
    }
}

impl std::fmt::Debug for Lease {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Lease(epoch={}, n={}, m={}, triangles={})",
            self.view.epoch,
            self.view.store.node_count(),
            self.view.edge_count,
            self.view.triangle_count,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_graph::generators::{Classic, Gnp};
    use congest_graph::triangles as oracle;

    fn v(i: u32) -> NodeId {
        NodeId(i)
    }

    fn triangle_batch() -> DeltaBatch {
        let mut b = DeltaBatch::new();
        b.insert(v(0), v(1)).insert(v(1), v(2)).insert(v(0), v(2));
        b
    }

    #[test]
    fn a_lease_pins_its_epoch_across_applies() {
        let mut server = TriangleServer::new(ShardedTriangleIndex::new(8, 2));
        let handle = server.handle();
        let before = handle.lease();
        assert_eq!(before.epoch(), 0);
        assert_eq!(before.triangle_count(), 0);

        server.apply(&triangle_batch()).unwrap();
        assert_eq!(server.epoch(), 1);

        // The old lease still answers from epoch 0…
        assert_eq!(before.triangle_count(), 0);
        assert_eq!(before.edge_count(), 0);
        assert!(!before.has_edge(v(0), v(1)));
        assert_eq!(before.node_support(v(0)), 0);

        // …while a fresh lease sees the published batch.
        let after = handle.lease();
        assert_eq!(after.epoch(), 1);
        assert_eq!(after.triangle_count(), 1);
        assert_eq!(after.edge_count(), 3);
        assert_eq!(after.node_support(v(1)), 1);
        assert_eq!(after.edge_support(v(0), v(2)), 1);
        assert!(after.edge_in_triangle(v(0), v(1)));
        assert!(!after.edge_in_triangle(v(3), v(4)));
    }

    #[test]
    fn lease_bookkeeping_tracks_acquires_and_drops() {
        let mut server = TriangleServer::new(ShardedTriangleIndex::new(8, 2));
        let handle = server.handle();
        assert_eq!(server.active_leases(), 0);
        assert_eq!(server.oldest_lease_epoch(), None);

        let a = handle.lease();
        server.apply(&triangle_batch()).unwrap();
        let b = handle.lease();
        let c = handle.lease();
        assert_eq!(server.active_leases(), 3);
        assert_eq!(server.oldest_lease_epoch(), Some(0));

        drop(a);
        assert_eq!(server.active_leases(), 2);
        assert_eq!(server.oldest_lease_epoch(), Some(1));
        drop(b);
        drop(c);
        assert_eq!(server.active_leases(), 0);
        assert_eq!(server.oldest_lease_epoch(), None);
    }

    #[test]
    fn leases_survive_heavy_churn_and_match_the_oracle() {
        // Removals force arena frees while a lease pins the pre-churn
        // epoch: the frozen view must keep answering exactly, and the
        // writer must keep matching its own oracle.
        let g = Classic::Complete(12).generate();
        let mut server =
            TriangleServer::new(ShardedTriangleIndex::from_graph(&g, 3).with_parallel_threshold(0));
        let handle = server.handle();
        let pinned = handle.lease();
        let pinned_triangles = oracle::list_all_on(&pinned);
        assert_eq!(pinned.triangle_count(), pinned_triangles.len());

        for round in 0..6u32 {
            let mut batch = DeltaBatch::new();
            for i in 0..12u32 {
                let j = (i + round + 1) % 12;
                if i != j {
                    if round % 2 == 0 {
                        batch.remove(v(i), v(j));
                    } else {
                        batch.insert(v(i), v(j));
                    }
                }
            }
            server.apply(&batch).unwrap();
            assert!(server.engine().matches_oracle(), "round {round}");
            // The pinned epoch never moves: a recount on the frozen
            // adjacency still equals the set it was published with.
            assert_eq!(pinned.epoch(), 0);
            assert_eq!(oracle::list_all_on(&pinned), pinned_triangles);
            assert_eq!(pinned.edge_count(), g.edge_count());
        }
    }

    #[test]
    fn top_k_support_orders_by_support_then_id() {
        let g = Gnp::new(30, 0.25).seeded(5).generate();
        let mut server = TriangleServer::new(ShardedTriangleIndex::from_graph(&g, 2));
        server.apply(&DeltaBatch::new()).unwrap();
        let lease = server.handle().lease();

        let all = lease.top_k_support(usize::MAX);
        assert_eq!(all.len(), 30);
        for pair in all.windows(2) {
            assert!(
                pair[0].1 > pair[1].1 || (pair[0].1 == pair[1].1 && pair[0].0 < pair[1].0),
                "descending support with id tiebreak"
            );
        }
        for &(node, support) in &all {
            assert_eq!(support as usize, lease.node_support(node));
            assert_eq!(
                support as usize,
                server.engine().node_support(node),
                "published support matches the live engine at the same epoch"
            );
        }
        assert_eq!(lease.top_k_support(3), all[..3].to_vec());
        assert!(lease.top_k_support(0).is_empty());
    }

    #[test]
    fn an_abandoned_lease_is_visible_in_the_registry_snapshot() {
        let mut server = TriangleServer::new(ShardedTriangleIndex::new(8, 2));
        let handle = server.handle();
        // A reader session that leased epoch 0 and was never cleaned up.
        let abandoned = handle.lease();
        let warnings_before = congest_obs::snapshot()
            .counters
            .get("serve.stale_lease_warnings")
            .copied()
            .unwrap_or(0);

        // Write on: every publish past the threshold must tick the
        // warning counter (epochs threshold+1..threshold+4 here).
        for _ in 0..STALE_LEASE_WARN_EPOCHS + 4 {
            server.apply(&DeltaBatch::new()).unwrap();
        }

        let snap = congest_obs::snapshot();
        let warnings = snap
            .counters
            .get("serve.stale_lease_warnings")
            .copied()
            .unwrap_or(0);
        // The counter is monotone and no other test produces stale
        // leases, so the delta is exactly the stale publishes.
        assert!(
            warnings >= warnings_before + 4,
            "stale publishes must warn: before={warnings_before} after={warnings}"
        );
        // The age gauge is published (value-asserting it would race
        // with concurrent tests' publishes; the counter above carries
        // the deterministic assertion).
        assert!(snap.gauges.contains_key("serve.lease_age_epochs_max"));
        // The lease itself still pins epoch 0 — observable, not fatal.
        assert_eq!(server.oldest_lease_epoch(), Some(0));
        assert_eq!(abandoned.epoch(), 0);
    }

    #[test]
    fn into_engine_returns_the_live_engine() {
        let mut server = TriangleServer::new(ShardedTriangleIndex::new(8, 2));
        server.apply(&triangle_batch()).unwrap();
        let lease = server.handle().lease();
        let engine = server.into_engine();
        assert_eq!(engine.triangle_count(), 1);
        // The lease outlives the server: its view holds the data alive.
        assert_eq!(lease.triangle_count(), 1);
    }

    #[test]
    fn debug_formats_summarize() {
        let server = TriangleServer::new(ShardedTriangleIndex::new(4, 2));
        assert!(format!("{server:?}").contains("epoch=0"));
        assert!(format!("{:?}", server.handle()).contains("epoch=0"));
        assert!(format!("{:?}", server.handle().lease()).contains("n=4"));
    }
}
