//! The workload runner: drives a [`TriangleIndex`] through any
//! [`BatchSource`] — a synthetic [`Scenario`] or a replayed temporal
//! file — and measures what a service operator would ask about:
//! throughput, per-batch latency percentiles, and how much the
//! incremental engine saves over recomputing the triangle set from
//! scratch.
//!
//! Latency and staleness percentiles come from streaming log-bucketed
//! [`Histogram`]s (fixed ≈ 30 KiB each, ≤ 1.6% relative bucket error),
//! not from a grow-forever sample vector — a week-long paced run costs
//! the same memory as a 25-batch test.

use std::time::{Duration, Instant};

use congest_graph::triangles as oracle;
use congest_obs::json;
use congest_obs::Histogram;

use crate::engine::StreamEngine;
use crate::index::{ApplyMode, ApplyReport, TriangleIndex};
use crate::sharded::ShardedTriangleIndex;
use crate::source::BatchSource;
use crate::workload::Scenario;

/// Latency percentiles over the per-batch apply times, in microseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LatencyStats {
    /// Median.
    pub p50_us: f64,
    /// 90th percentile.
    pub p90_us: f64,
    /// 99th percentile.
    pub p99_us: f64,
    /// Worst batch (exact, not bucketed).
    pub max_us: f64,
    /// Arithmetic mean (exact, not bucketed).
    pub mean_us: f64,
}

impl LatencyStats {
    /// Computes percentiles from raw per-batch durations (convenience
    /// wrapper: records everything into a streaming histogram first, so
    /// percentiles carry the histogram's ≤ 1.6% bucket resolution while
    /// max and mean stay exact).
    pub fn from_durations(durations: &[Duration]) -> Self {
        let mut hist = Histogram::new();
        for d in durations {
            hist.record(*d);
        }
        LatencyStats::from_histogram(&hist)
    }

    /// Reads the percentiles off a streaming histogram.
    pub fn from_histogram(hist: &Histogram) -> Self {
        if hist.is_empty() {
            return LatencyStats::default();
        }
        LatencyStats {
            p50_us: hist.value_at_quantile_us(0.50),
            p90_us: hist.value_at_quantile_us(0.90),
            p99_us: hist.value_at_quantile_us(0.99),
            max_us: hist.max_ns() as f64 / 1e3,
            mean_us: hist.mean_ns() / 1e3,
        }
    }
}

/// Staleness of deferred work: how long the oldest buffered delta had
/// been waiting each time the engine flushed, in microseconds. All zero
/// for eager runs (nothing is ever buffered).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StalenessStats {
    /// Number of flushes that found buffered work.
    pub flushes: usize,
    /// Median staleness at flush.
    pub p50_us: f64,
    /// 99th-percentile staleness at flush.
    pub p99_us: f64,
    /// Worst staleness at flush.
    pub max_us: f64,
}

impl StalenessStats {
    /// Computes percentiles from the raw at-flush staleness samples
    /// (convenience wrapper over [`StalenessStats::from_histogram`]).
    pub fn from_durations(durations: &[Duration]) -> Self {
        let mut hist = Histogram::new();
        for d in durations {
            hist.record(*d);
        }
        StalenessStats::from_histogram(&hist)
    }

    /// Reads the percentiles off a streaming histogram.
    pub fn from_histogram(hist: &Histogram) -> Self {
        if hist.is_empty() {
            return StalenessStats::default();
        }
        StalenessStats {
            flushes: hist.count() as usize,
            p50_us: hist.value_at_quantile_us(0.50),
            p99_us: hist.value_at_quantile_us(0.99),
            max_us: hist.max_ns() as f64 / 1e3,
        }
    }
}

/// Timing comparison against the from-scratch recount baseline.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RecomputeStats {
    /// Batches on which the baseline was timed.
    pub samples: usize,
    /// Mean seconds per sampled from-scratch recount.
    pub mean_recompute_secs: f64,
    /// Mean seconds per incremental batch apply.
    pub mean_incremental_secs: f64,
    /// `mean_recompute_secs / mean_incremental_secs` — how much cheaper
    /// maintaining the triangle set is than recounting it per batch.
    pub speedup: f64,
}

/// Everything one run of a scenario produced.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSummary {
    /// Batch-source name (`kind/base` for scenarios, `replay/<file>` for
    /// temporal replays).
    pub scenario: String,
    /// The source's deterministic 52-bit fingerprint. Gates compare this
    /// to refuse baselines measured on a different workload.
    pub source_fingerprint: u64,
    /// Replay policy label (`size:N` / `window:MS`), `None` for
    /// generated sources.
    pub replay_policy: Option<String>,
    /// Number of nodes.
    pub n: usize,
    /// Number of batches driven.
    pub batch_count: usize,
    /// Nominal deltas per batch.
    pub batch_size: usize,
    /// Apply mode name (`eager` / `deferred`) — the **effective** mode
    /// reported by the engine after the run, not merely the requested
    /// one, so baselines are self-describing.
    pub mode: String,
    /// Shard count of the sharded engine, `None` for the single-threaded
    /// [`TriangleIndex`]. Like [`mode`](RunSummary::mode), this is the
    /// effective count the engine reports (requested counts are clamped
    /// to at least 1).
    pub shards: Option<usize>,
    /// Count-based flush period of deferred runs (`None` for eager runs,
    /// where nothing is ever buffered).
    pub flush_every: Option<usize>,
    /// Deadline-based flush budget, if one was set (milliseconds).
    pub flush_deadline_ms: Option<f64>,
    /// Edges in the base graph before the stream.
    pub base_edges: usize,
    /// Edges after the stream.
    pub final_edges: usize,
    /// Live triangles after the stream.
    pub final_triangles: usize,
    /// Totals of every apply/flush report.
    pub totals: ApplyReport,
    /// Wall-clock seconds for the whole run (including pacing sleeps).
    pub elapsed_secs: f64,
    /// Seconds spent inside the engine (excluding pacing sleeps).
    pub busy_secs: f64,
    /// Deltas per second of wall-clock with the recompute-baseline
    /// sampling overhead excluded (pacing sleeps still count).
    pub deltas_per_sec: f64,
    /// Batches per second, on the same clock as
    /// [`deltas_per_sec`](RunSummary::deltas_per_sec).
    pub batches_per_sec: f64,
    /// Target batch rate, if the run was paced.
    pub target_batches_per_sec: Option<f64>,
    /// Per-batch latency percentiles.
    pub latency: LatencyStats,
    /// Staleness of buffered work at each flush (all zero in eager mode).
    pub staleness: StalenessStats,
    /// Mean over pool-applied batches of the busiest worker's busy time
    /// as a share of the batch's apply wall time (`None` when no batch
    /// ran on a persistent worker pool). A hot hub with no stealing
    /// pushes this toward 1.0 while
    /// [`worker_busy_mean_share`](RunSummary::worker_busy_mean_share)
    /// stays near `1/S`; work stealing pulls the two together.
    pub worker_busy_max_share: Option<f64>,
    /// Mean over pool-applied batches of the per-worker mean busy share
    /// of the apply wall time — the pool's utilization.
    pub worker_busy_mean_share: Option<f64>,
    /// Total intersection task units executed by a worker that did not
    /// own the slice they came from (the work-stealing path firing).
    pub steal_count: Option<u64>,
    /// Baseline comparison, when sampled.
    pub recompute: Option<RecomputeStats>,
    /// Whether the final state was checked against the oracle.
    pub oracle_checked: bool,
    /// Result of that check (`true` when unchecked runs trivially pass).
    pub oracle_ok: bool,
}

impl RunSummary {
    /// Serializes the summary as a single JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        json::push_str(&mut out, "scenario", &self.scenario);
        json::push_num(
            &mut out,
            "source_fingerprint",
            self.source_fingerprint as f64,
        );
        match &self.replay_policy {
            Some(p) => json::push_str(&mut out, "replay_policy", p),
            None => json::push_raw(&mut out, "replay_policy", "null"),
        }
        json::push_num(&mut out, "n", self.n as f64);
        json::push_num(&mut out, "batch_count", self.batch_count as f64);
        json::push_num(&mut out, "batch_size", self.batch_size as f64);
        json::push_str(&mut out, "mode", &self.mode);
        match self.shards {
            Some(s) => json::push_num(&mut out, "shards", s as f64),
            None => json::push_raw(&mut out, "shards", "null"),
        }
        match self.flush_every {
            Some(k) => json::push_num(&mut out, "flush_every", k as f64),
            None => json::push_raw(&mut out, "flush_every", "null"),
        }
        match self.flush_deadline_ms {
            Some(ms) => json::push_num(&mut out, "flush_deadline_ms", ms),
            None => json::push_raw(&mut out, "flush_deadline_ms", "null"),
        }
        json::push_num(&mut out, "base_edges", self.base_edges as f64);
        json::push_num(&mut out, "final_edges", self.final_edges as f64);
        json::push_num(&mut out, "final_triangles", self.final_triangles as f64);
        json::push_num(&mut out, "deltas_seen", self.totals.deltas_seen as f64);
        json::push_num(
            &mut out,
            "inserts_applied",
            self.totals.inserts_applied as f64,
        );
        json::push_num(
            &mut out,
            "removes_applied",
            self.totals.removes_applied as f64,
        );
        json::push_num(&mut out, "noops", self.totals.noops as f64);
        json::push_num(
            &mut out,
            "triangles_added",
            self.totals.triangles_added as f64,
        );
        json::push_num(
            &mut out,
            "triangles_removed",
            self.totals.triangles_removed as f64,
        );
        json::push_num(&mut out, "elapsed_secs", self.elapsed_secs);
        json::push_num(&mut out, "busy_secs", self.busy_secs);
        json::push_num(&mut out, "deltas_per_sec", self.deltas_per_sec);
        json::push_num(&mut out, "batches_per_sec", self.batches_per_sec);
        match self.target_batches_per_sec {
            Some(rate) => json::push_num(&mut out, "target_batches_per_sec", rate),
            None => json::push_raw(&mut out, "target_batches_per_sec", "null"),
        }
        json::push_num(&mut out, "latency_p50_us", self.latency.p50_us);
        json::push_num(&mut out, "latency_p90_us", self.latency.p90_us);
        json::push_num(&mut out, "latency_p99_us", self.latency.p99_us);
        json::push_num(&mut out, "latency_max_us", self.latency.max_us);
        json::push_num(&mut out, "latency_mean_us", self.latency.mean_us);
        json::push_num(&mut out, "staleness_flushes", self.staleness.flushes as f64);
        json::push_num(&mut out, "staleness_p50_us", self.staleness.p50_us);
        json::push_num(&mut out, "staleness_p99_us", self.staleness.p99_us);
        json::push_num(&mut out, "staleness_max_us", self.staleness.max_us);
        match self.worker_busy_max_share {
            Some(v) => json::push_num(&mut out, "worker_busy_max_share", v),
            None => json::push_raw(&mut out, "worker_busy_max_share", "null"),
        }
        match self.worker_busy_mean_share {
            Some(v) => json::push_num(&mut out, "worker_busy_mean_share", v),
            None => json::push_raw(&mut out, "worker_busy_mean_share", "null"),
        }
        match self.steal_count {
            Some(v) => json::push_num(&mut out, "steal_count", v as f64),
            None => json::push_raw(&mut out, "steal_count", "null"),
        }
        match &self.recompute {
            Some(r) => {
                json::push_num(&mut out, "recompute_samples", r.samples as f64);
                json::push_num(&mut out, "recompute_mean_secs", r.mean_recompute_secs);
                json::push_num(&mut out, "incremental_mean_secs", r.mean_incremental_secs);
                json::push_num(&mut out, "speedup_vs_recompute", r.speedup);
            }
            None => {
                json::push_raw(&mut out, "recompute_samples", "null");
                json::push_raw(&mut out, "speedup_vs_recompute", "null");
            }
        }
        json::push_bool(&mut out, "oracle_checked", self.oracle_checked);
        json::push_bool(&mut out, "oracle_ok", self.oracle_ok);
        json::finish_object(&mut out);
        out
    }
}

/// Drives a triangle engine through any [`BatchSource`].
///
/// The default source type is [`Scenario`], so the historical
/// constructor keeps working unchanged:
///
/// ```
/// use congest_stream::{BaseGraph, Scenario, WorkloadRunner};
///
/// let scenario = Scenario::uniform_churn(120, 15, 40)
///     .with_base(BaseGraph::Gnp { p: 0.05 })
///     .seeded(11);
/// let summary = WorkloadRunner::new(scenario).verified(true).run();
/// assert!(summary.oracle_ok);
/// assert!(summary.deltas_per_sec > 0.0);
/// ```
///
/// A replayed temporal file drives the identical measurement loop:
///
/// ```
/// use congest_graph::temporal::TemporalLoader;
/// use congest_stream::{Replay, ReplayPolicy, WorkloadRunner};
///
/// let list = TemporalLoader::new()
///     .parse_str("0 1 10\n1 2 12\n0 2 25\n")
///     .unwrap();
/// let replay = Replay::new(list, ReplayPolicy::BySize(2));
/// let summary = WorkloadRunner::from_source(replay).verified(true).run();
/// assert!(summary.oracle_ok);
/// assert_eq!(summary.replay_policy.as_deref(), Some("size:2"));
/// ```
#[derive(Debug, Clone)]
pub struct WorkloadRunner<S: BatchSource = Scenario> {
    source: S,
    mode: ApplyMode,
    /// `None` drives the single-threaded [`TriangleIndex`]; `Some(s)`
    /// drives a [`ShardedTriangleIndex`] with `s` shards.
    shards: Option<usize>,
    /// In deferred mode, flush after this many batches (>= 1).
    flush_every: usize,
    /// In deferred mode, also flush whenever the oldest buffered delta is
    /// older than this.
    flush_deadline: Option<Duration>,
    /// Time a from-scratch recount every `k` batches; 0 disables.
    recompute_every: usize,
    /// Optional pacing target.
    target_batches_per_sec: Option<f64>,
    /// Check the final triangle set against the oracle.
    verify: bool,
    /// Override of the sharded engine's parallel threshold.
    parallel_threshold: Option<usize>,
    /// Override of the sharded engine's split threshold (pins it,
    /// disabling the adaptive controller).
    split_threshold: Option<usize>,
    /// Benchmark control: drive the sharded engine in per-batch-spawn
    /// mode instead of on its persistent pool.
    spawn_per_batch: bool,
}

impl WorkloadRunner<Scenario> {
    /// A runner with eager application, the single-threaded engine, no
    /// pacing, recompute sampling every 8 batches and no final oracle
    /// check.
    pub fn new(scenario: Scenario) -> Self {
        Self::from_source(scenario)
    }

    /// The scenario this runner drives.
    pub fn scenario(&self) -> &Scenario {
        &self.source
    }
}

impl<S: BatchSource> WorkloadRunner<S> {
    /// A runner over any [`BatchSource`], with the same defaults as
    /// [`WorkloadRunner::new`]: eager application, the single-threaded
    /// engine, no pacing, recompute sampling every 8 batches and no
    /// final oracle check.
    pub fn from_source(source: S) -> Self {
        WorkloadRunner {
            source,
            mode: ApplyMode::Eager,
            shards: None,
            flush_every: 8,
            flush_deadline: None,
            recompute_every: 8,
            target_batches_per_sec: None,
            verify: false,
            parallel_threshold: None,
            split_threshold: None,
            spawn_per_batch: false,
        }
    }

    /// Sets the apply mode (builder style).
    pub fn with_mode(mut self, mode: ApplyMode) -> Self {
        self.mode = mode;
        self
    }

    /// Drives a [`ShardedTriangleIndex`] with `shards` shards instead of
    /// the single-threaded [`TriangleIndex`] (builder style).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = Some(shards.max(1));
        self
    }

    /// Overrides the sharded engine's parallel threshold (builder style;
    /// only meaningful together with
    /// [`with_shards`](WorkloadRunner::with_shards)). 0 forces the
    /// two-phase pipeline on every batch — the small-batch benchmark
    /// sweeps use this so sub-threshold batches still exercise the pool.
    pub fn with_parallel_threshold(mut self, threshold: usize) -> Self {
        self.parallel_threshold = Some(threshold);
        self
    }

    /// Pins the sharded engine's split threshold, disabling its adaptive
    /// controller (builder style; only meaningful together with
    /// [`with_shards`](WorkloadRunner::with_shards)). 0 makes every edge
    /// and every touched slot its own stealable task — the trace capture
    /// uses this to force both steal paths deterministically.
    pub fn with_split_threshold(mut self, threshold: usize) -> Self {
        self.split_threshold = Some(threshold);
        self
    }

    /// Benchmark control (builder style): drive the sharded engine with
    /// scoped threads spawned per batch (the pre-pool pipeline) instead
    /// of the persistent worker pool. `stream_bench` measures the pool's
    /// small-batch throughput and hotspot tail latency against this.
    pub fn spawn_per_batch(mut self) -> Self {
        self.spawn_per_batch = true;
        self
    }

    /// Sets the deferred-mode flush period (builder style, clamped to 1+).
    pub fn flush_every(mut self, batches: usize) -> Self {
        self.flush_every = batches.max(1);
        self
    }

    /// Latency-bounded flushing (builder style): in deferred mode, also
    /// flush as soon as the oldest buffered delta has waited longer than
    /// `deadline`. Caps how stale a read of the triangle set can get
    /// while still amortizing flush work over multiple batches.
    pub fn flush_deadline(mut self, deadline: Duration) -> Self {
        self.flush_deadline = Some(deadline);
        self
    }

    /// Sets how often the recompute baseline is sampled; 0 disables
    /// (builder style).
    pub fn recompute_every(mut self, batches: usize) -> Self {
        self.recompute_every = batches;
        self
    }

    /// Paces the stream at a target batch rate (builder style).
    pub fn paced(mut self, batches_per_sec: f64) -> Self {
        assert!(
            batches_per_sec > 0.0,
            "target rate must be positive, got {batches_per_sec}"
        );
        self.target_batches_per_sec = Some(batches_per_sec);
        self
    }

    /// Enables/disables the final oracle check (builder style).
    pub fn verified(mut self, verify: bool) -> Self {
        self.verify = verify;
        self
    }

    /// The batch source this runner drives.
    pub fn source(&self) -> &S {
        &self.source
    }

    /// Runs the workload once and summarizes it.
    pub fn run(&self) -> RunSummary {
        let base = self.source.base_graph();
        match self.shards {
            None => self.run_engine(TriangleIndex::from_graph(&base).with_mode(self.mode), &base),
            Some(s) => {
                let mut engine = ShardedTriangleIndex::from_graph(&base, s).with_mode(self.mode);
                if let Some(threshold) = self.parallel_threshold {
                    engine = engine.with_parallel_threshold(threshold);
                }
                if let Some(threshold) = self.split_threshold {
                    engine = engine.with_split_threshold(threshold);
                }
                if self.spawn_per_batch {
                    engine = engine.with_per_batch_spawn();
                }
                self.run_engine(engine, &base)
            }
        }
    }

    /// Drives any [`StreamEngine`] through the source. The engine is an
    /// [`AdjacencyView`](congest_graph::AdjacencyView), so the recompute
    /// baseline and the oracle check read its live adjacency directly —
    /// no snapshot rebuild anywhere on the measurement path. Batches are
    /// pulled lazily off [`BatchSource::batch_iter`]: a replayed file's
    /// deltas are never all resident at once.
    fn run_engine<E: StreamEngine>(&self, mut index: E, base: &congest_graph::Graph) -> RunSummary {
        let base_edges = base.edge_count();
        let batch_count = self.source.batch_count();

        let mut totals = ApplyReport::default();
        let mut latency_hist = Histogram::new();
        let mut staleness_hist = Histogram::new();
        let mut recompute_total = Duration::ZERO;
        let mut sampling_total = Duration::ZERO;
        let mut recompute_samples = 0usize;

        let pacing_interval = self
            .target_batches_per_sec
            .map(|rate| Duration::from_secs_f64(1.0 / rate));
        let run_start = Instant::now();
        let mut next_slot = run_start;

        for (i, batch) in self.source.batch_iter().enumerate() {
            if let Some(interval) = pacing_interval {
                let now = Instant::now();
                if next_slot > now {
                    std::thread::sleep(next_slot - now);
                }
                next_slot += interval;
            }

            let start = Instant::now();
            let report = index
                .apply(&batch)
                .expect("batch sources only touch in-range nodes");
            totals.absorb(&report);
            let flush_due = self.mode == ApplyMode::Deferred
                && ((i + 1) % self.flush_every == 0
                    || i + 1 == batch_count
                    || self.deadline_exceeded(&index));
            if flush_due {
                congest_obs::span!("runner", "flush");
                if let Some(age) = index.pending_age() {
                    staleness_hist.record(age);
                }
                totals.absorb(&index.flush());
            }
            latency_hist.record(start.elapsed());

            if self.recompute_every > 0 && i % self.recompute_every == 0 {
                // Time the from-scratch alternative on the same state the
                // incremental engine maintains, reading the engine's live
                // adjacency directly. The whole sampling block is excluded
                // from the run's throughput clock below.
                let sample_start = Instant::now();
                let t = Instant::now();
                let recount = oracle::list_all_on(&index);
                recompute_total += t.elapsed();
                recompute_samples += 1;
                // Keep the optimizer honest.
                assert!(recount.len() <= base.node_count().pow(3));
                sampling_total += sample_start.elapsed();
            }
        }
        // Safety net for sources whose iterator disagrees with their
        // declared batch count: deferred work must never outlive the run.
        if self.mode == ApplyMode::Deferred && index.pending_age().is_some() {
            totals.absorb(&index.flush());
        }
        let elapsed = run_start.elapsed();

        let busy: Duration = latency_hist.total();
        let (oracle_checked, oracle_ok) = if self.verify {
            (true, index.matches_oracle())
        } else {
            (false, true)
        };

        let mean_incremental = if latency_hist.is_empty() {
            0.0
        } else {
            busy.as_secs_f64() / latency_hist.count() as f64
        };
        let recompute = (recompute_samples > 0).then(|| {
            let mean_recompute = recompute_total.as_secs_f64() / recompute_samples as f64;
            RecomputeStats {
                samples: recompute_samples,
                mean_recompute_secs: mean_recompute,
                mean_incremental_secs: mean_incremental,
                speedup: if mean_incremental > 0.0 {
                    mean_recompute / mean_incremental
                } else {
                    f64::INFINITY
                },
            }
        });

        let elapsed_secs = elapsed.as_secs_f64().max(f64::MIN_POSITIVE);
        // Throughput excludes the recompute-baseline sampling (snapshot
        // build + recount), which runs inside the loop purely as
        // measurement overhead: with sampling on every batch the baseline
        // can dominate wall time by exactly the speedup factor being
        // measured.
        let measured_secs = elapsed
            .saturating_sub(sampling_total)
            .as_secs_f64()
            .max(f64::MIN_POSITIVE);
        // Engine-reported mode and shard count: what actually ran, so a
        // committed baseline describes itself even if requested knobs
        // were clamped or overridden.
        let effective_mode = index.mode();
        let telemetry = index.worker_telemetry();
        // Fold pool telemetry and flush staleness into the process-wide
        // registry: last run wins for gauges, which is what the bench
        // binaries snapshot right after the run they care about.
        if let Some(t) = &telemetry {
            congest_obs::gauge_set("pool.busy_max_share_mean", t.busy_max_share_mean);
            congest_obs::gauge_set("pool.busy_mean_share_mean", t.busy_mean_share_mean);
            congest_obs::gauge_set("pool.steals", t.steals as f64);
            congest_obs::gauge_set("pool.record_split_tasks", t.record_split_tasks as f64);
            congest_obs::gauge_set("pool.split_threshold", t.split_threshold as f64);
        }
        if let Some(a) = index.arena_stats() {
            congest_obs::gauge_set("arena.slab_bytes", a.slab_bytes as f64);
            congest_obs::gauge_set("arena.live_bytes", a.live_bytes as f64);
            congest_obs::gauge_set("arena.free_bytes", a.free_bytes as f64);
            congest_obs::gauge_set("arena.free_slabs", a.free_slabs as f64);
            congest_obs::gauge_set("arena.compactions", a.compactions as f64);
        }
        if !staleness_hist.is_empty() {
            congest_obs::gauge_set(
                "runner.flush_staleness_p99_us",
                staleness_hist.value_at_quantile_us(0.99),
            );
            congest_obs::gauge_set(
                "runner.flush_staleness_max_us",
                staleness_hist.max_ns() as f64 / 1e3,
            );
            congest_obs::counter_add("runner.flushes", staleness_hist.count());
        }
        RunSummary {
            scenario: self.source.name(),
            source_fingerprint: self.source.fingerprint(),
            replay_policy: self.source.replay_policy(),
            n: self.source.node_count(),
            batch_count,
            batch_size: self.source.batch_size(),
            mode: effective_mode.name().to_string(),
            shards: self.shards.map(|_| index.shard_count()),
            flush_every: (effective_mode == ApplyMode::Deferred).then_some(self.flush_every),
            flush_deadline_ms: self.flush_deadline.map(|d| d.as_secs_f64() * 1e3),
            base_edges,
            final_edges: index.edge_count(),
            final_triangles: index.triangle_count(),
            totals,
            elapsed_secs,
            busy_secs: busy.as_secs_f64(),
            deltas_per_sec: totals.deltas_seen as f64 / measured_secs,
            batches_per_sec: batch_count as f64 / measured_secs,
            target_batches_per_sec: self.target_batches_per_sec,
            latency: LatencyStats::from_histogram(&latency_hist),
            staleness: StalenessStats::from_histogram(&staleness_hist),
            worker_busy_max_share: telemetry.map(|t| t.busy_max_share_mean),
            worker_busy_mean_share: telemetry.map(|t| t.busy_mean_share_mean),
            steal_count: telemetry.map(|t| t.steals),
            recompute,
            oracle_checked,
            oracle_ok,
        }
    }

    /// Whether the deadline-based flush policy demands a flush now.
    fn deadline_exceeded<E: StreamEngine>(&self, index: &E) -> bool {
        match self.flush_deadline {
            Some(deadline) => index.pending_age().is_some_and(|age| age >= deadline),
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::BaseGraph;

    fn small_scenario() -> Scenario {
        Scenario::uniform_churn(60, 12, 25)
            .with_base(BaseGraph::Gnp { p: 0.08 })
            .seeded(21)
    }

    #[test]
    fn runner_totals_cover_every_delta() {
        let summary = WorkloadRunner::new(small_scenario()).verified(true).run();
        assert_eq!(summary.totals.deltas_seen, 12 * 25);
        assert_eq!(
            summary.totals.inserts_applied + summary.totals.removes_applied + summary.totals.noops,
            12 * 25
        );
        assert!(summary.oracle_checked && summary.oracle_ok);
        assert!(summary.busy_secs <= summary.elapsed_secs * 1.5);
    }

    #[test]
    fn deferred_runner_flushes_everything_by_the_end() {
        let summary = WorkloadRunner::new(small_scenario())
            .with_mode(ApplyMode::Deferred)
            .flush_every(5)
            .verified(true)
            .run();
        assert!(summary.oracle_ok);
        // Deferred runs are self-describing: the flush policy is in the
        // summary and its JSON.
        assert_eq!(summary.flush_every, Some(5));
        assert!(summary.to_json().contains("\"flush_every\":5"));
        // Every delta was deferred once and counted as seen exactly once
        // (flushes do not re-count), so eager and deferred throughput
        // numbers are directly comparable.
        assert_eq!(summary.totals.deltas_deferred, 12 * 25);
        assert_eq!(summary.totals.deltas_seen, 12 * 25);
        assert_eq!(
            summary.totals.inserts_applied + summary.totals.removes_applied + summary.totals.noops,
            12 * 25
        );
    }

    #[test]
    fn recompute_sampling_produces_a_speedup_estimate() {
        let summary = WorkloadRunner::new(small_scenario())
            .recompute_every(4)
            .run();
        let r = summary.recompute.expect("sampling was enabled");
        assert_eq!(r.samples, 3);
        assert!(r.speedup > 0.0);
        let off = WorkloadRunner::new(small_scenario())
            .recompute_every(0)
            .run();
        assert!(off.recompute.is_none());
    }

    #[test]
    fn pacing_slows_the_run_down() {
        let scenario = Scenario::uniform_churn(20, 5, 5).seeded(2);
        let paced = WorkloadRunner::new(scenario.clone())
            .recompute_every(0)
            .paced(100.0)
            .run();
        // 5 batches at 100/s leave >= ~40ms of pacing.
        assert!(paced.elapsed_secs >= 0.03, "got {}", paced.elapsed_secs);
        assert_eq!(paced.target_batches_per_sec, Some(100.0));
        assert!(paced.batches_per_sec <= 150.0);
    }

    #[test]
    fn sharded_engine_produces_the_same_final_state() {
        let scenario = small_scenario();
        let single = WorkloadRunner::new(scenario.clone()).verified(true).run();
        for shards in [1, 4] {
            let sharded = WorkloadRunner::new(scenario.clone())
                .with_shards(shards)
                .verified(true)
                .run();
            assert!(sharded.oracle_ok, "shards={shards}");
            assert_eq!(sharded.shards, Some(shards));
            assert_eq!(sharded.final_edges, single.final_edges);
            assert_eq!(sharded.final_triangles, single.final_triangles);
            assert!(sharded.to_json().contains(&format!("\"shards\":{shards}")));
        }
        assert_eq!(single.shards, None);
        assert!(single.to_json().contains("\"shards\":null"));
    }

    #[test]
    fn deadline_flushing_bounds_staleness_and_reports_it() {
        // Pace the run so buffered deltas age measurably, with a count
        // threshold too large to ever fire: every flush but the final one
        // must come from the deadline policy.
        let scenario = Scenario::uniform_churn(40, 10, 10).seeded(3);
        let deadline = Duration::from_millis(20);
        let summary = WorkloadRunner::new(scenario)
            .with_mode(ApplyMode::Deferred)
            .flush_every(1_000_000)
            .flush_deadline(deadline)
            .recompute_every(0)
            .paced(100.0)
            .verified(true)
            .run();
        assert!(summary.oracle_ok);
        assert_eq!(summary.flush_deadline_ms, Some(20.0));
        // 10 batches at ~10ms spacing against a 20ms budget: the deadline
        // fires several times, not just the end-of-run flush.
        assert!(
            summary.staleness.flushes >= 2,
            "expected deadline-driven flushes, got {:?}",
            summary.staleness
        );
        assert!(summary.staleness.p50_us > 0.0);
        assert!(summary.staleness.p50_us <= summary.staleness.p99_us);
        assert!(summary.staleness.p99_us <= summary.staleness.max_us);
        let json = summary.to_json();
        assert!(json.contains("\"flush_deadline_ms\":20"));
        assert!(json.contains("\"staleness_p99_us\":"));
    }

    #[test]
    fn eager_runs_report_zero_staleness() {
        let summary = WorkloadRunner::new(small_scenario()).run();
        assert_eq!(summary.staleness, StalenessStats::default());
        assert_eq!(summary.flush_deadline_ms, None);
        assert_eq!(summary.flush_every, None, "eager runs never flush");
        let json = summary.to_json();
        assert!(json.contains("\"flush_deadline_ms\":null"));
        assert!(json.contains("\"flush_every\":null"));
    }

    #[test]
    fn summaries_record_the_effective_engine_configuration() {
        // Deferred sharded run with a deadline: every knob that shaped
        // the run is recoverable from the JSON alone.
        let summary = WorkloadRunner::new(small_scenario())
            .with_mode(ApplyMode::Deferred)
            .with_shards(4)
            .flush_every(3)
            .flush_deadline(Duration::from_millis(50))
            .run();
        assert_eq!(summary.mode, "deferred");
        assert_eq!(summary.shards, Some(4));
        assert_eq!(summary.flush_every, Some(3));
        let json = summary.to_json();
        for fragment in [
            "\"mode\":\"deferred\"",
            "\"shards\":4",
            "\"flush_every\":3",
            "\"flush_deadline_ms\":50",
        ] {
            assert!(json.contains(fragment), "missing {fragment} in {json}");
        }
        // `with_shards(0)` clamps to 1; the summary reports what ran.
        let clamped = WorkloadRunner::new(small_scenario()).with_shards(0).run();
        assert_eq!(clamped.shards, Some(1));
    }

    #[test]
    fn pool_runs_report_worker_telemetry_and_single_runs_do_not() {
        // Threshold 0 forces every batch through the pool at S=4.
        let pooled = WorkloadRunner::new(small_scenario())
            .with_shards(4)
            .with_parallel_threshold(0)
            .recompute_every(0)
            .run();
        let max = pooled.worker_busy_max_share.expect("pool batches ran");
        let mean = pooled.worker_busy_mean_share.expect("pool batches ran");
        assert!(max > 0.0 && max <= 1.0, "max share {max}");
        assert!(mean > 0.0 && mean <= max, "mean {mean} vs max {max}");
        assert!(pooled.steal_count.is_some());
        let json = pooled.to_json();
        assert!(json.contains("\"worker_busy_max_share\":"));
        assert!(json.contains("\"steal_count\":"));

        // The single-threaded engine has no pool to observe.
        let single = WorkloadRunner::new(small_scenario()).run();
        assert_eq!(single.worker_busy_max_share, None);
        assert_eq!(single.steal_count, None);
        assert!(single.to_json().contains("\"worker_busy_max_share\":null"));
        assert!(single.to_json().contains("\"steal_count\":null"));

        // The per-batch-spawn benchmark control has no persistent
        // workers either.
        let spawn = WorkloadRunner::new(small_scenario())
            .with_shards(4)
            .with_parallel_threshold(0)
            .spawn_per_batch()
            .recompute_every(0)
            .run();
        assert_eq!(spawn.worker_busy_max_share, None);
        assert_eq!(spawn.final_triangles, pooled.final_triangles);
    }

    #[test]
    fn staleness_stats_of_empty_input_are_zero() {
        assert_eq!(
            StalenessStats::from_durations(&[]),
            StalenessStats::default()
        );
        let stats = StalenessStats::from_durations(&[
            Duration::from_micros(100),
            Duration::from_micros(300),
            Duration::from_micros(200),
        ]);
        assert_eq!(stats.flushes, 3);
        // The median comes off the streaming histogram: within one
        // log-bucket (≤ 1.6%) of the exact 200 µs sorted-vec answer.
        let (lo, hi) = congest_obs::Histogram::bucket_of(200_000);
        let p50_ns = stats.p50_us * 1e3;
        assert!(
            p50_ns >= lo as f64 && p50_ns <= hi as f64,
            "p50 {} µs outside the bucket of 200 µs",
            stats.p50_us
        );
        // Max is tracked exactly, outside the buckets.
        assert_eq!(stats.max_us, 300.0);
    }

    #[test]
    fn single_sample_percentiles_are_that_sample() {
        // The p99 nearest-rank index must clamp on 1-element (and any
        // boundary-sized) samples instead of trusting float rounding.
        let one = [Duration::from_micros(42)];
        let s = StalenessStats::from_durations(&one);
        assert_eq!(s.flushes, 1);
        assert_eq!((s.p50_us, s.p99_us, s.max_us), (42.0, 42.0, 42.0));
        let l = LatencyStats::from_durations(&one);
        assert_eq!(
            (l.p50_us, l.p90_us, l.p99_us, l.max_us),
            (42.0, 42.0, 42.0, 42.0)
        );
        assert_eq!(l.mean_us, 42.0);
        // The shared nearest-rank convention stays in bounds across
        // sizes (the histogram uses the same index internally).
        for len in 1..200 {
            for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
                assert!(
                    congest_obs::nearest_rank_index(len, q) < len,
                    "len {len} q {q}"
                );
            }
        }
    }

    #[test]
    fn no_flush_run_emits_null_free_staleness_json() {
        // An eager run never flushes: every staleness field must be a
        // real number (zero), never `null`, so downstream dashboards
        // can subtract without null checks.
        let summary = WorkloadRunner::new(small_scenario()).run();
        assert_eq!(summary.staleness.flushes, 0);
        let json = summary.to_json();
        for key in [
            "staleness_flushes",
            "staleness_p50_us",
            "staleness_p99_us",
            "staleness_max_us",
        ] {
            assert!(
                json.contains(&format!("\"{key}\":0")),
                "{key} must be numeric zero in {json}"
            );
            assert!(
                !json.contains(&format!("\"{key}\":null")),
                "{key} must not be null"
            );
        }
    }

    #[test]
    fn non_finite_metrics_serialize_as_null_not_invalid_json() {
        // An infinite recompute speedup (zero-cost incremental mean)
        // must not leak `inf` into the JSON.
        let mut summary = WorkloadRunner::new(small_scenario())
            .recompute_every(4)
            .run();
        let mut recompute = summary.recompute.expect("sampling was on");
        recompute.speedup = f64::INFINITY;
        summary.recompute = Some(recompute);
        let json = summary.to_json();
        assert!(json.contains("\"speedup_vs_recompute\":null"), "{json}");
        assert!(!json.contains("inf"), "{json}");
        assert!(!json.contains("NaN"), "{json}");
    }

    #[test]
    fn latency_stats_are_ordered() {
        let summary = WorkloadRunner::new(small_scenario()).run();
        let l = summary.latency;
        assert!(l.p50_us <= l.p90_us);
        assert!(l.p90_us <= l.p99_us);
        assert!(l.p99_us <= l.max_us);
        assert!(l.mean_us > 0.0);
    }

    #[test]
    fn latency_stats_of_empty_input_are_zero() {
        assert_eq!(LatencyStats::from_durations(&[]), LatencyStats::default());
    }

    #[test]
    fn json_is_well_formed_enough() {
        let summary = WorkloadRunner::new(small_scenario()).verified(true).run();
        let json = summary.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"scenario\":\"uniform_churn/gnp\""));
        assert!(json.contains("\"oracle_ok\":true"));
        assert!(json.contains("\"latency_p99_us\":"));
        // Balanced quotes and no trailing comma before the brace.
        assert_eq!(json.matches('"').count() % 2, 0);
        assert!(!json.contains(",}"));
    }

    #[test]
    fn json_escaping_handles_special_characters() {
        // The shared escaper (the summary serializer now rides on it).
        assert_eq!(json::escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json::escape("\u{1}"), "\\u0001");
    }

    #[test]
    #[should_panic(expected = "target rate must be positive")]
    fn pacing_rejects_nonpositive_rates() {
        let _ = WorkloadRunner::new(small_scenario()).paced(0.0);
    }

    #[test]
    fn summaries_carry_the_source_identity() {
        let scenario = small_scenario();
        let summary = WorkloadRunner::new(scenario.clone()).run();
        assert_eq!(
            summary.source_fingerprint,
            BatchSource::fingerprint(&scenario)
        );
        assert!(summary.source_fingerprint < (1 << 52));
        assert_eq!(summary.replay_policy, None);
        let json = summary.to_json();
        assert!(json.contains(&format!(
            "\"source_fingerprint\":{}",
            summary.source_fingerprint
        )));
        assert!(json.contains("\"replay_policy\":null"));
        // A different seed is a different workload identity.
        let other = WorkloadRunner::new(small_scenario().seeded(99)).run();
        assert_ne!(other.source_fingerprint, summary.source_fingerprint);
    }

    #[test]
    fn replayed_files_run_the_same_measurement_loop() {
        use crate::source::{Replay, ReplayPolicy};
        use congest_graph::temporal::{SyntheticTemporal, TemporalLoader};

        let text = SyntheticTemporal::new(24, 300).seeded(41).render();
        let list = TemporalLoader::new().parse_str(&text).unwrap();
        let replay = Replay::new(list, ReplayPolicy::BySize(25)).with_label("synthetic");
        let expected_fp = replay.fingerprint();
        let summary = WorkloadRunner::from_source(replay)
            .with_mode(ApplyMode::Deferred)
            .flush_every(4)
            .verified(true)
            .run();
        assert!(summary.oracle_ok);
        assert_eq!(summary.scenario, "replay/synthetic");
        assert_eq!(summary.source_fingerprint, expected_fp);
        assert_eq!(summary.replay_policy.as_deref(), Some("size:25"));
        assert_eq!(summary.batch_count, 12);
        assert_eq!(summary.totals.deltas_seen, 300);
        let json = summary.to_json();
        assert!(json.contains("\"replay_policy\":\"size:25\""));
    }
}
