//! Where batches come from: the [`BatchSource`] abstraction and the
//! temporal-file [`Replay`] driver.
//!
//! Historically every bench, gate and chaos harness ran on the four
//! synthetic [`Scenario`] generator families. [`BatchSource`] makes the
//! origin of a delta stream a first-class abstraction instead: a source
//! names itself, fingerprints itself (so gates can refuse cross-source
//! baseline comparisons), supplies a base graph, and yields its
//! [`DeltaBatch`]es *lazily* — replaying a large temporal file streams
//! batches instead of holding the timeline's deltas in memory twice.
//!
//! Two implementations ship:
//!
//! * [`Scenario`] — the existing generator families, unchanged
//!   bit-for-bit (a regression test pins their streams to pre-refactor
//!   checksums);
//! * [`Replay`] — a parsed [`TemporalEdgeList`] chopped into batches by
//!   a [`ReplayPolicy`]: fixed batch size, or fixed wall-clock time
//!   window over the file's own timestamps.
//!
//! [`split_batch_for_workers`] rounds out the layer with the per-worker
//! batch split the timely/differential replay tools use: worker `i` of
//! `p` receives `len/p + (len%p > i)` deltas of each batch.

use std::sync::Arc;

use congest_graph::temporal::{fingerprint64, TemporalEdgeList, TemporalEvent};
use congest_graph::{Graph, GraphBuilder};

use crate::delta::DeltaBatch;
use crate::workload::{BaseGraph, Scenario, ScenarioKind};

/// The lazy batch stream a [`BatchSource`] yields.
pub type BatchIter<'a> = Box<dyn Iterator<Item = DeltaBatch> + 'a>;

/// A deterministic producer of a base graph plus a stream of
/// [`DeltaBatch`]es.
///
/// Everything downstream — [`WorkloadRunner`](crate::WorkloadRunner),
/// the bench binaries, the chaos harness — is generic over this trait,
/// so a synthetic scenario and a replayed temporal file are
/// interchangeable workloads. Implementations must be deterministic:
/// two calls to [`BatchSource::batch_iter`] yield identical streams,
/// and [`BatchSource::fingerprint`] identifies the stream (bench gates
/// compare fingerprints to refuse cross-source baselines).
pub trait BatchSource {
    /// Human-readable source name, used in logs and JSON
    /// (e.g. `uniform_churn/gnp` or `replay/churn.txt`).
    fn name(&self) -> String;

    /// Number of nodes of the graph the stream mutates.
    fn node_count(&self) -> usize;

    /// The graph state before the first batch.
    fn base_graph(&self) -> Graph;

    /// Exact number of batches [`BatchSource::batch_iter`] yields.
    fn batch_count(&self) -> usize;

    /// Nominal deltas per batch (individual batches may differ — bursts
    /// overshoot, trailing replay chunks undershoot).
    fn batch_size(&self) -> usize;

    /// Deterministic 52-bit fingerprint of the stream's identity.
    ///
    /// Always `< 2^52`, so the value survives a round trip through an
    /// `f64` JSON number exactly.
    fn fingerprint(&self) -> u64;

    /// The replay policy label (`size:N` / `window:MS`), `None` for
    /// generated sources.
    fn replay_policy(&self) -> Option<String> {
        None
    }

    /// The batch stream, generated lazily.
    fn batch_iter(&self) -> BatchIter<'_>;

    /// The batch stream, materialized. Prefer
    /// [`BatchSource::batch_iter`] for long streams.
    fn batches(&self) -> Vec<DeltaBatch> {
        self.batch_iter().collect()
    }
}

impl BatchSource for Scenario {
    fn name(&self) -> String {
        // Inherent method of the same name; the trait defers to it.
        Scenario::name(self)
    }

    fn node_count(&self) -> usize {
        Scenario::node_count(self)
    }

    fn base_graph(&self) -> Graph {
        Scenario::base_graph(self)
    }

    fn batch_count(&self) -> usize {
        Scenario::batch_count(self)
    }

    fn batch_size(&self) -> usize {
        Scenario::batch_size(self)
    }

    fn fingerprint(&self) -> u64 {
        // Every parameter that shapes the stream, folded in a fixed
        // order. Float parameters contribute their exact bit patterns.
        let (kind_tag, kind_a, kind_b) = match self.kind() {
            ScenarioKind::UniformChurn => (1u64, 0, 0),
            ScenarioKind::HotspotChurn { exponent } => (2, exponent.to_bits(), 0),
            ScenarioKind::PlantedBurst {
                burst_every,
                triangles_per_burst,
            } => (3, burst_every as u64, triangles_per_burst as u64),
            ScenarioKind::GrowThenShrink => (4, 0, 0),
        };
        let (base_tag, base_a, base_b) = match self.base() {
            BaseGraph::Empty => (1u64, 0, 0),
            BaseGraph::Gnp { p } => (2, p.to_bits(), 0),
            BaseGraph::PlantedLight {
                count,
                background_p,
            } => (3, count as u64, background_p.to_bits()),
            BaseGraph::TriangleFreeBipartite { p } => (4, p.to_bits(), 0),
        };
        fingerprint64([
            0x5CE7A810u64,
            kind_tag,
            kind_a,
            kind_b,
            base_tag,
            base_a,
            base_b,
            self.node_count() as u64,
            Scenario::batch_count(self) as u64,
            Scenario::batch_size(self) as u64,
            self.seed(),
        ])
    }

    fn batch_iter(&self) -> BatchIter<'_> {
        Box::new(Scenario::batch_iter(self))
    }

    fn batches(&self) -> Vec<DeltaBatch> {
        Scenario::batches(self)
    }
}

/// How a [`Replay`] chops a time-sorted event timeline into batches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayPolicy {
    /// Fixed batch size: consecutive runs of `N` events (the final batch
    /// may be shorter).
    BySize(usize),
    /// Fixed time window: all events whose timestamps fall in the same
    /// `MS`-wide window, anchored at the first event's time. Empty
    /// windows yield no batch (the stream skips ahead).
    ByTimeWindow(u64),
}

impl ReplayPolicy {
    /// Parses a CLI policy spec: `size:N` or `window:MS`.
    pub fn parse(spec: &str) -> Result<ReplayPolicy, String> {
        let (kind, value) = spec
            .split_once(':')
            .ok_or_else(|| format!("replay policy {spec:?}: expected `size:N` or `window:MS`"))?;
        match kind {
            "size" => {
                let n: usize = value
                    .parse()
                    .map_err(|e| format!("replay policy {spec:?}: batch size: {e}"))?;
                if n == 0 {
                    return Err(format!(
                        "replay policy {spec:?}: batch size must be positive"
                    ));
                }
                Ok(ReplayPolicy::BySize(n))
            }
            "window" => {
                let ms: u64 = value
                    .parse()
                    .map_err(|e| format!("replay policy {spec:?}: window width: {e}"))?;
                if ms == 0 {
                    return Err(format!("replay policy {spec:?}: window must be positive"));
                }
                Ok(ReplayPolicy::ByTimeWindow(ms))
            }
            other => Err(format!(
                "replay policy {spec:?}: unknown kind {other:?} (expected `size` or `window`)"
            )),
        }
    }

    /// Round-trippable label (`size:N` / `window:MS`), recorded in
    /// bench JSON so baselines can refuse cross-policy comparisons.
    pub fn label(&self) -> String {
        match self {
            ReplayPolicy::BySize(n) => format!("size:{n}"),
            ReplayPolicy::ByTimeWindow(ms) => format!("window:{ms}"),
        }
    }
}

/// A [`BatchSource`] that replays a parsed [`TemporalEdgeList`].
///
/// The timeline is already time-sorted; the replay driver walks it once
/// per [`Replay::batch_iter`] call, grouping events into batches by the
/// [`ReplayPolicy`] and mapping arrivals to inserts and departures to
/// removals. The base graph is empty — a temporal file carries its whole
/// history as events.
///
/// ```
/// use congest_graph::temporal::TemporalLoader;
/// use congest_stream::{BatchSource, Replay, ReplayPolicy};
///
/// let list = TemporalLoader::new()
///     .parse_str("0 1 10\n1 2 12\n0 2 25\n")
///     .unwrap();
/// let replay = Replay::new(list, ReplayPolicy::ByTimeWindow(10));
/// assert_eq!(replay.batch_count(), 2); // [10,20) and [20,30)
/// let batches = replay.batches();
/// assert_eq!(batches[0].len(), 2);
/// assert_eq!(batches[1].len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Replay {
    timeline: Arc<TemporalEdgeList>,
    policy: ReplayPolicy,
    label: String,
    batch_count: usize,
}

impl Replay {
    /// Wraps a timeline with a batching policy. The source is labeled
    /// `replay/temporal`; use [`Replay::with_label`] to name the file.
    pub fn new(timeline: TemporalEdgeList, policy: ReplayPolicy) -> Self {
        let batch_count = count_batches(timeline.events(), policy);
        Replay {
            timeline: Arc::new(timeline),
            policy,
            label: "temporal".to_string(),
            batch_count,
        }
    }

    /// Like [`Replay::new`] but shares an already-`Arc`ed timeline, so
    /// several runner configurations can replay one loaded file without
    /// cloning the event vector.
    pub fn from_shared(timeline: Arc<TemporalEdgeList>, policy: ReplayPolicy) -> Self {
        let batch_count = count_batches(timeline.events(), policy);
        Replay {
            timeline,
            policy,
            label: "temporal".to_string(),
            batch_count,
        }
    }

    /// Names the source after its origin (typically the file name);
    /// shows up in logs and JSON as `replay/<label>`.
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// The replayed timeline.
    pub fn timeline(&self) -> &TemporalEdgeList {
        &self.timeline
    }

    /// The batching policy.
    pub fn policy(&self) -> ReplayPolicy {
        self.policy
    }
}

/// Number of batches `policy` chops `events` into (mirrors the
/// iterator's grouping exactly).
fn count_batches(events: &[TemporalEvent], policy: ReplayPolicy) -> usize {
    if events.is_empty() {
        return 0;
    }
    match policy {
        ReplayPolicy::BySize(n) => events.len().div_ceil(n),
        ReplayPolicy::ByTimeWindow(w) => {
            let t0 = events[0].time;
            let mut windows = 1usize;
            let mut current = 0u64;
            for e in events {
                let idx = (e.time - t0) / w;
                if idx != current {
                    windows += 1;
                    current = idx;
                }
            }
            windows
        }
    }
}

impl BatchSource for Replay {
    fn name(&self) -> String {
        format!("replay/{}", self.label)
    }

    fn node_count(&self) -> usize {
        self.timeline.node_count()
    }

    fn base_graph(&self) -> Graph {
        // A temporal file IS the history; the graph starts empty.
        GraphBuilder::new(self.timeline.node_count()).build()
    }

    fn batch_count(&self) -> usize {
        self.batch_count
    }

    fn batch_size(&self) -> usize {
        match self.policy {
            ReplayPolicy::BySize(n) => n,
            // Windows have no fixed size; report the average so
            // summaries stay meaningful.
            ReplayPolicy::ByTimeWindow(_) => {
                if self.batch_count == 0 {
                    0
                } else {
                    self.timeline.len().div_ceil(self.batch_count)
                }
            }
        }
    }

    fn fingerprint(&self) -> u64 {
        // File identity plus policy: replaying the same file with a
        // different batching is a different workload for gating.
        let (tag, param) = match self.policy {
            ReplayPolicy::BySize(n) => (1u64, n as u64),
            ReplayPolicy::ByTimeWindow(ms) => (2, ms),
        };
        fingerprint64([0x002E_B1A4_u64, self.timeline.fingerprint(), tag, param])
    }

    fn replay_policy(&self) -> Option<String> {
        Some(self.policy.label())
    }

    fn batch_iter(&self) -> BatchIter<'_> {
        Box::new(ReplayIter {
            events: self.timeline.events(),
            pos: 0,
            policy: self.policy,
        })
    }
}

/// Streaming batcher over a time-sorted event slice.
struct ReplayIter<'a> {
    events: &'a [TemporalEvent],
    pos: usize,
    policy: ReplayPolicy,
}

impl Iterator for ReplayIter<'_> {
    type Item = DeltaBatch;

    fn next(&mut self) -> Option<DeltaBatch> {
        if self.pos >= self.events.len() {
            return None;
        }
        let start = self.pos;
        let end = match self.policy {
            ReplayPolicy::BySize(n) => (start + n).min(self.events.len()),
            ReplayPolicy::ByTimeWindow(w) => {
                let t0 = self.events[0].time;
                let window = (self.events[start].time - t0) / w;
                let mut end = start + 1;
                while end < self.events.len() && (self.events[end].time - t0) / w == window {
                    end += 1;
                }
                end
            }
        };
        self.pos = end;
        let mut batch = DeltaBatch::new();
        for e in &self.events[start..end] {
            if e.is_departure() {
                batch.remove(e.u, e.v);
            } else {
                batch.insert(e.u, e.v);
            }
        }
        Some(batch)
    }
}

/// Splits one batch across `workers` round-robin, so worker `i` receives
/// exactly `len/workers + (len % workers > i)` deltas — the per-worker
/// quota the timely/differential replay harnesses use. Relative delta
/// order is preserved within each worker's slice.
///
/// # Panics
///
/// Panics if `workers == 0`.
pub fn split_batch_for_workers(batch: &DeltaBatch, workers: usize) -> Vec<DeltaBatch> {
    assert!(workers > 0, "need at least one worker");
    let mut parts = vec![DeltaBatch::new(); workers];
    for (j, delta) in batch.deltas().iter().enumerate() {
        parts[j % workers].push(*delta);
    }
    parts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delta::EdgeDelta;
    use congest_graph::temporal::TemporalLoader;
    use congest_graph::NodeId;

    /// Re-applies split batches in a deterministic worker-interleaved
    /// order; proves the split loses nothing.
    fn rejoin_split(parts: &[DeltaBatch]) -> Vec<EdgeDelta> {
        let mut out = Vec::new();
        let longest = parts.iter().map(DeltaBatch::len).max().unwrap_or(0);
        for k in 0..longest {
            for p in parts {
                if let Some(d) = p.deltas().get(k) {
                    out.push(*d);
                }
            }
        }
        out
    }

    fn toy_timeline() -> TemporalEdgeList {
        TemporalLoader::new()
            .parse_str("0 1 10\n1 2 11\n0 2 25\n2 3 -1 26\n1 3 40\n")
            .unwrap()
    }

    #[test]
    fn scenario_implements_batch_source_consistently() {
        let s = Scenario::uniform_churn(40, 5, 10).seeded(9);
        let trait_batches = BatchSource::batches(&s);
        assert_eq!(trait_batches, s.batches());
        assert_eq!(BatchSource::name(&s), "uniform_churn/empty");
        assert_eq!(BatchSource::batch_count(&s), 5);
        assert!(BatchSource::fingerprint(&s) < (1 << 52));
        assert_eq!(BatchSource::replay_policy(&s), None);
    }

    #[test]
    fn scenario_fingerprints_separate_every_parameter() {
        let base = Scenario::uniform_churn(40, 5, 10).seeded(9);
        let fp = BatchSource::fingerprint(&base);
        for other in [
            Scenario::uniform_churn(41, 5, 10).seeded(9),
            Scenario::uniform_churn(40, 6, 10).seeded(9),
            Scenario::uniform_churn(40, 5, 11).seeded(9),
            Scenario::uniform_churn(40, 5, 10).seeded(10),
            Scenario::hotspot_churn(40, 5, 10).seeded(9),
            Scenario::uniform_churn(40, 5, 10)
                .with_base(BaseGraph::Gnp { p: 0.05 })
                .seeded(9),
        ] {
            assert_ne!(fp, BatchSource::fingerprint(&other), "{}", other.name());
        }
        // Stable across calls.
        assert_eq!(fp, BatchSource::fingerprint(&base));
    }

    #[test]
    fn replay_by_size_chops_into_fixed_chunks() {
        let replay = Replay::new(toy_timeline(), ReplayPolicy::BySize(2));
        assert_eq!(replay.batch_count(), 3);
        assert_eq!(replay.batch_size(), 2);
        let batches = replay.batches();
        assert_eq!(batches.len(), 3);
        assert_eq!(batches[0].len(), 2);
        assert_eq!(batches[1].len(), 2);
        assert_eq!(batches[2].len(), 1);
        // The departure at t=26 lands in batch 1 as a removal.
        assert_eq!(
            batches[1].deltas()[1],
            EdgeDelta::remove(NodeId(2), NodeId(3))
        );
        let total: usize = batches.iter().map(DeltaBatch::len).sum();
        assert_eq!(total, replay.timeline().len());
    }

    #[test]
    fn replay_by_window_groups_by_timestamp_and_skips_empty_windows() {
        // Events at t = 10, 11, 25, 26, 40; windows of 10 anchored at 10
        // give [10,20) -> 2 events, [20,30) -> 2, [40,50) -> 1 (the
        // empty [30,40) window yields no batch).
        let replay = Replay::new(toy_timeline(), ReplayPolicy::ByTimeWindow(10));
        assert_eq!(replay.batch_count(), 3);
        let batches = replay.batches();
        assert_eq!(batches.len(), 3);
        assert_eq!(batches[0].len(), 2);
        assert_eq!(batches[1].len(), 2);
        assert_eq!(batches[2].len(), 1);
    }

    #[test]
    fn replay_metadata_identifies_file_and_policy() {
        let a = Replay::new(toy_timeline(), ReplayPolicy::BySize(2)).with_label("churn.txt");
        let b = Replay::new(toy_timeline(), ReplayPolicy::BySize(3)).with_label("churn.txt");
        assert_eq!(a.name(), "replay/churn.txt");
        assert_eq!(a.replay_policy().as_deref(), Some("size:2"));
        // Same file, different policy: different fingerprint.
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert!(a.fingerprint() < (1 << 52));
        // Replay starts from an empty graph on the timeline's nodes.
        assert_eq!(a.base_graph().node_count(), 4);
        assert_eq!(a.base_graph().edge_count(), 0);
    }

    #[test]
    fn replay_of_empty_timeline_is_empty() {
        let list = TemporalLoader::new().parse_str("# nothing\n").unwrap();
        let replay = Replay::new(list, ReplayPolicy::BySize(8));
        assert_eq!(replay.batch_count(), 0);
        assert!(replay.batches().is_empty());
    }

    #[test]
    fn policy_specs_round_trip_and_reject_garbage() {
        assert_eq!(
            ReplayPolicy::parse("size:500").unwrap(),
            ReplayPolicy::BySize(500)
        );
        assert_eq!(
            ReplayPolicy::parse("window:250").unwrap(),
            ReplayPolicy::ByTimeWindow(250)
        );
        for p in [ReplayPolicy::BySize(7), ReplayPolicy::ByTimeWindow(123)] {
            assert_eq!(ReplayPolicy::parse(&p.label()).unwrap(), p);
        }
        for bad in ["size", "size:0", "window:0", "size:x", "rate:5", ""] {
            assert!(ReplayPolicy::parse(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn split_respects_the_per_worker_quota() {
        let mut batch = DeltaBatch::new();
        for i in 0..11u32 {
            batch.insert(NodeId(i), NodeId(i + 1));
        }
        for workers in 1..=5 {
            let parts = split_batch_for_workers(&batch, workers);
            assert_eq!(parts.len(), workers);
            for (i, part) in parts.iter().enumerate() {
                let quota = batch.len() / workers + usize::from(batch.len() % workers > i);
                assert_eq!(part.len(), quota, "worker {i} of {workers}");
            }
            // Nothing lost, nothing duplicated.
            assert_eq!(rejoin_split(&parts), batch.deltas().to_vec());
        }
    }
}
