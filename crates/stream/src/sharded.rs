//! The sharded, multi-core incremental triangle engine.
//!
//! [`ShardedTriangleIndex`] partitions the adjacency across `S`
//! [`Shard`](crate::shard)s by node hash (`id mod S`, see
//! [`ShardSpec`](crate::shard)); each shard owns the full sorted
//! neighbour list of every node mapped to it, so a cross-shard edge is
//! recorded twice — once per endpoint's owner — exactly like the two
//! directions of an adjacency list. A batch then applies in **two
//! phases**, mirroring the paper's bandwidth partitioning (Theorem 2
//! splits intersection work across node classes the same way):
//!
//! 1. **Shard-parallel phase** — the batch is split by endpoint
//!    ownership (every edge maps to exactly one worker) and runs on the
//!    engine's persistent [`ShardPool`](crate::pool): `S` long-lived
//!    workers, spawned once and fed work descriptors over channels, so
//!    a batch costs channel sends instead of thread spawns:
//!    * *collect* (read-only on the pre-batch adjacency): each worker
//!      coalesces its slice (at most one op per edge survives),
//!      classifies the survivors against the current edge set and
//!      gathers, for every effective removal `{u, v}`, the candidate
//!      triangles `{u, v, w}` with `w ∈ N(u) ∩ N(v)`. Slices whose
//!      estimated intersection work (sum of endpoint degrees) exceeds
//!      the split threshold are *deferred* instead of intersected: the
//!      engine chunks every deferred slice onto a shared injector queue
//!      and dispatches a drain wave in which all `S` workers **steal**
//!      chunks until it empties — seeded before any drainer starts, so
//!      a hot hub's candidate collection reliably spreads across the
//!      pool instead of serializing its owner;
//!    * *record* (each worker owns exactly one shard, moved to it for
//!      the phase): the owning shards apply the routed neighbour-list
//!      mutations — a cross-shard edge is recorded by both owners, with
//!      no coordination because shards never write each other's lists;
//!    * *collect again* (read-only on the post-batch adjacency): the
//!      candidate triangles every effective insertion closes, stealable
//!      exactly like the removal collection.
//! 2. **Merge phase** — candidate triangle deltas are deduplicated into
//!    the global [`TriangleSet`]: a triangle whose death (or birth) was
//!    observed by several of its edges is retired (or added) **exactly
//!    once**, because set removal/insertion reports whether it actually
//!    changed membership.
//!
//! Correctness does not depend on intra-batch ordering: after coalescing
//! (at most one op per edge) the post-batch graph `G' = G − R + I` is a
//! set equation, the retired triangles are exactly the triangles of `G`
//! containing an edge of `R`, and the new triangles are exactly the
//! triangles of `G'` containing an edge of `I`. Phase 1 computes
//! candidate supersets of both on consistent (pre- and post-batch) views
//! — and stealing only moves *which worker* intersects a given edge, not
//! what is intersected — so the merge phase's dedup makes the counts
//! exact. The engine is therefore equivalent to applying, within each
//! batch, all removals before all insertions; the final graph and
//! triangle set are identical to [`TriangleIndex`](crate::TriangleIndex)'s
//! strictly-ordered application, though per-batch `ApplyReport` tallies
//! can differ on batches that flap an edge (the coalescer counts the
//! dropped ops as no-ops instead of applying them).

use std::fmt;
use std::sync::Arc;
use std::time::Duration;

use congest_graph::{AdjacencyView, Edge, Graph, GraphBuilder, NodeId, Triangle, TriangleSet};

use crate::delta::{DeltaBatch, DeltaOp, EdgeDelta, PendingBuffer};
use crate::index::{validate_batch, ApplyMode, ApplyReport, StreamError};
use crate::pool::{
    classify_slice, collect_candidates, BatchRun, BatchStats, ShardPool, WorkerPlan,
    WorkerTelemetry, DEFAULT_SPLIT_THRESHOLD,
};
use crate::shard::{
    intersect_sorted, merge_added_candidates_supported, merge_removed_candidates_supported,
    NodeSupport, ShardOp, ShardStore,
};

/// Below this many deltas a batch is applied inline: even with the
/// persistent pool, channel handoff and partitioning cost more than a
/// tiny batch's intersections.
const DEFAULT_PARALLEL_THRESHOLD: usize = 128;

/// Clamp range for the adaptive split-threshold controller. The floor
/// keeps queue traffic from swamping tiny slices when imbalance is
/// persistent; the ceiling keeps one pathological balanced batch from
/// disabling stealing for the rest of the run.
const MIN_SPLIT_THRESHOLD: usize = 64;
const MAX_SPLIT_THRESHOLD: usize = 65_536;

/// Controller bands: observed max/mean busy-share imbalance above the
/// high band halves the threshold (spread harder), below the low band
/// doubles it (stop paying for queue traffic the balance doesn't need).
const IMBALANCE_HIGH: f64 = 1.5;
const IMBALANCE_LOW: f64 = 1.15;

/// Saturation gate for the controller: splitting a hot shard can only
/// shorten a batch when the busiest worker's compute actually dominates
/// the batch's wall clock. Below this busy share the critical path is
/// handoff and merge, not shard work — seen in practice when the OS has
/// fewer cores than the pool has workers — and every extra stealable
/// task is pure queue overhead, so the controller backs off instead.
const SATURATION_FLOOR: f64 = 0.5;

/// Aggregates per-batch pool stats into the engine's lifetime
/// [`WorkerTelemetry`].
#[derive(Debug, Clone, Copy, Default)]
struct TelemetryAccum {
    pooled_batches: usize,
    max_share_sum: f64,
    mean_share_sum: f64,
    steals: u64,
    record_split_tasks: u64,
}

impl TelemetryAccum {
    fn record(&mut self, stats: BatchStats) {
        self.pooled_batches += 1;
        self.max_share_sum += stats.busy_max_share;
        self.mean_share_sum += stats.busy_mean_share;
        self.steals += stats.steals;
        self.record_split_tasks += stats.record_split_tasks;
    }

    fn summary(&self, split_threshold: usize) -> Option<WorkerTelemetry> {
        (self.pooled_batches > 0).then(|| WorkerTelemetry {
            pooled_batches: self.pooled_batches,
            busy_max_share_mean: self.max_share_sum / self.pooled_batches as f64,
            busy_mean_share_mean: self.mean_share_sum / self.pooled_batches as f64,
            steals: self.steals,
            record_split_tasks: self.record_split_tasks,
            split_threshold,
        })
    }
}

/// Multi-core incremental triangle engine over batched edge deltas.
///
/// Same contract as [`TriangleIndex`](crate::TriangleIndex) — the live
/// triangle set always equals a from-scratch recount — but batch applies
/// fan out across `S` shards on a persistent worker pool with work
/// stealing for hub-heavy slices. The module-level documentation in
/// `sharded.rs` walks through the two-phase apply.
///
/// ```
/// use congest_graph::generators::Gnp;
/// use congest_graph::triangles as oracle;
/// use congest_stream::{DeltaBatch, ShardedTriangleIndex};
///
/// let graph = Gnp::new(64, 0.1).seeded(1).generate();
/// let mut index = ShardedTriangleIndex::from_graph(&graph, 4);
///
/// let mut batch = DeltaBatch::new();
/// batch.insert(congest_graph::NodeId(0), congest_graph::NodeId(1));
/// index.apply(&batch).unwrap();
///
/// // The live set always equals a snapshot-free recount on the index.
/// assert_eq!(index.triangles(), &oracle::list_all_on(&index));
/// ```
pub struct ShardedTriangleIndex {
    store: ShardStore,
    /// The live triangle set (global: the merge phase is the only writer).
    triangles: TriangleSet,
    /// Per-node triangle-support counters, maintained alongside
    /// `triangles` by the same merge/apply sites (copy-on-write so a
    /// published serve view shares it for free).
    support: NodeSupport,
    /// Number of present undirected edges.
    edge_count: usize,
    /// How many arena epochs freed slabs stay quarantined past their
    /// free point: `next_epoch − oldest_lease_epoch` when a
    /// [`TriangleServer`](crate::TriangleServer) has readers pinned to
    /// old views, 0 (immediate reuse once the batch ends) otherwise.
    reclaim_lag: u64,
    mode: ApplyMode,
    /// Deferred-mode buffer (concatenated batches + staleness clock).
    pending: PendingBuffer,
    /// Batch size below which the apply takes the sequential path.
    parallel_threshold: usize,
    /// Estimated intersection work above which a worker's candidate
    /// collection splits into stealable tasks.
    split_threshold: usize,
    /// Whether the split threshold tracks observed busy-share imbalance
    /// (the default) or stays pinned to the value handed to
    /// [`with_split_threshold`](ShardedTriangleIndex::with_split_threshold).
    split_threshold_adaptive: bool,
    /// Benchmark control: spawn scoped threads per batch (the pre-pool
    /// pipeline) instead of using the persistent pool.
    spawn_per_batch: bool,
    /// The persistent worker pool, spawned lazily on the first pipelined
    /// batch and reused for every batch and flush after that.
    pool: Option<ShardPool>,
    telemetry: TelemetryAccum,
}

impl Clone for ShardedTriangleIndex {
    /// Clones the engine's *state*; the clone spawns its own worker pool
    /// lazily (threads are not cloneable) and starts with the original's
    /// accumulated telemetry.
    fn clone(&self) -> Self {
        ShardedTriangleIndex {
            store: self.store.clone(),
            triangles: self.triangles.clone(),
            support: self.support.clone(),
            edge_count: self.edge_count,
            reclaim_lag: self.reclaim_lag,
            mode: self.mode,
            pending: self.pending.clone(),
            parallel_threshold: self.parallel_threshold,
            split_threshold: self.split_threshold,
            split_threshold_adaptive: self.split_threshold_adaptive,
            spawn_per_batch: self.spawn_per_batch,
            pool: None,
            telemetry: self.telemetry,
        }
    }
}

impl ShardedTriangleIndex {
    /// An empty index on `node_count` nodes over `shard_count` shards
    /// (clamped to at least 1), in [`ApplyMode::Eager`].
    pub fn new(node_count: usize, shard_count: usize) -> Self {
        ShardedTriangleIndex {
            store: ShardStore::new(node_count, shard_count),
            triangles: TriangleSet::new(),
            support: NodeSupport::new(node_count),
            edge_count: 0,
            reclaim_lag: 0,
            mode: ApplyMode::Eager,
            pending: PendingBuffer::default(),
            parallel_threshold: DEFAULT_PARALLEL_THRESHOLD,
            split_threshold: DEFAULT_SPLIT_THRESHOLD,
            split_threshold_adaptive: true,
            spawn_per_batch: false,
            pool: None,
            telemetry: TelemetryAccum::default(),
        }
    }

    /// An index seeded with a static graph's edges and triangles (the
    /// triangles are computed once with the centralized reference
    /// listing).
    pub fn from_graph(graph: &Graph, shard_count: usize) -> Self {
        let mut index = Self::new(graph.node_count(), shard_count);
        for node in graph.nodes() {
            index.store.seed(node, graph.neighbors(node));
        }
        index.triangles = congest_graph::triangles::list_all(graph);
        index.support = NodeSupport::seed_from(&index.triangles, graph.node_count());
        index.edge_count = graph.edge_count();
        index
    }

    /// Sets the application mode (builder style).
    ///
    /// Switching away from deferred mode first flushes anything buffered,
    /// so deltas are never reordered across the mode change.
    pub fn with_mode(mut self, mode: ApplyMode) -> Self {
        if mode != self.mode && !self.pending.is_empty() {
            self.flush();
        }
        self.mode = mode;
        self
    }

    /// Sets the batch size below which applies run on the strictly
    /// ordered sequential path instead of the two-phase pipeline (builder
    /// style). A single-shard index always takes the sequential path —
    /// with one shard there is no cross-shard coordination to amortize,
    /// and the pipeline's partition/coalesce/route overhead is pure loss.
    /// Setting the threshold to 0 forces the pipeline on every batch and
    /// every shard count (the property tests do this so tiny batches
    /// still cover the pool-backed path).
    pub fn with_parallel_threshold(mut self, threshold: usize) -> Self {
        self.parallel_threshold = threshold;
        self
    }

    /// Pins the estimated-work budget above which a worker's candidate
    /// collection — and a shard's record preparation — is split into
    /// stealable task units on the pool's shared injector queue (builder
    /// style), **disabling the adaptive controller**. By default the
    /// threshold starts at 2048 and tracks observed busy-share
    /// imbalance per pooled batch: persistent imbalance halves it
    /// (spread harder), sustained balance doubles it (stop paying for
    /// queue traffic), clamped to `[64, 65536]`. Lower values spread
    /// hub-heavy slices more aggressively at the cost of more queue
    /// traffic; 0 makes every edge (and every touched slot) its own
    /// task (the property tests use this to force both steal paths on
    /// tiny batches).
    pub fn with_split_threshold(mut self, threshold: usize) -> Self {
        self.split_threshold = threshold;
        self.split_threshold_adaptive = false;
        self
    }

    /// Benchmark control (builder style): run the pipeline on freshly
    /// spawned scoped threads each batch — the pre-pool architecture,
    /// with no stealing — instead of the persistent pool. `stream_bench`
    /// uses this as the baseline the pool's small-batch speedup and
    /// hotspot tail-latency improvements are measured against; it is not
    /// meant for production configurations.
    pub fn with_per_batch_spawn(mut self) -> Self {
        self.spawn_per_batch = true;
        self
    }

    /// The application mode in effect.
    pub fn mode(&self) -> ApplyMode {
        self.mode
    }

    /// Number of shards `S`.
    pub fn shard_count(&self) -> usize {
        self.store.shard_count()
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.store.node_count()
    }

    /// Number of present undirected edges (excluding pending deltas).
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Sorted neighbour list of `node`, read from its owning shard.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn neighbors(&self, node: NodeId) -> &[NodeId] {
        self.store.neighbors(node)
    }

    /// Current degree of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn degree(&self, node: NodeId) -> usize {
        self.store.degree(node)
    }

    /// Whether `{a, b}` is currently an edge (excluding pending deltas).
    pub fn has_edge(&self, a: NodeId, b: NodeId) -> bool {
        self.store.has_edge(a, b)
    }

    /// The live triangle set.
    ///
    /// In deferred mode this reflects only flushed batches; call
    /// [`flush`](ShardedTriangleIndex::flush) first for a consistent view.
    pub fn triangles(&self) -> &TriangleSet {
        &self.triangles
    }

    /// Number of live triangles (same staleness caveat as
    /// [`triangles`](ShardedTriangleIndex::triangles)).
    pub fn triangle_count(&self) -> usize {
        self.triangles.len()
    }

    /// Number of live triangles containing `node`, maintained
    /// incrementally by the merge phase — O(1), no re-intersection.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn node_support(&self, node: NodeId) -> usize {
        self.support.of(node)
    }

    /// Number of live triangles containing the edge `{a, b}` — one
    /// sorted-list intersection (`O(deg a + deg b)`); 0 when the edge is
    /// absent.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range.
    pub fn edge_support(&self, a: NodeId, b: NodeId) -> usize {
        if !self.has_edge(a, b) {
            return 0;
        }
        congest_graph::count_common(self.neighbors(a), self.neighbors(b))
    }

    /// Sets how many arena epochs freed slabs outlive their free point
    /// (0 restores immediate end-of-batch reuse). The serve layer calls
    /// this before every apply with `next_epoch − oldest_lease_epoch` so
    /// published views never see their slabs recycled under them.
    pub(crate) fn set_reclaim_lag(&mut self, lag: u64) {
        self.reclaim_lag = lag;
    }

    /// An O(S) handle-copy of the shard store (the shards themselves are
    /// shared `Arc`s; the next mutating batch copy-on-writes only the
    /// shards it touches). This is what a published serve view holds.
    pub(crate) fn clone_store(&self) -> ShardStore {
        self.store.clone()
    }

    /// The shared per-node support vector backing
    /// [`node_support`](Self::node_support) (an `Arc` clone, no copy).
    pub(crate) fn support_counts(&self) -> Arc<Vec<u32>> {
        self.support.share()
    }

    /// Deltas buffered by deferred mode and not yet flushed.
    pub fn pending_deltas(&self) -> usize {
        self.pending.len()
    }

    /// How long the oldest buffered delta has been waiting (`None` while
    /// nothing is pending).
    pub fn pending_age(&self) -> Option<Duration> {
        self.pending.age()
    }

    /// Lifetime worker-pool telemetry: busy-share balance and steal
    /// counts over every pool-applied batch (`None` while no batch has
    /// run on the pool — inline, sequential and per-batch-spawn applies
    /// have no persistent workers to observe).
    pub fn worker_telemetry(&self) -> Option<WorkerTelemetry> {
        self.telemetry.summary(self.split_threshold)
    }

    /// Aggregate arena health over every shard's flat neighbour storage
    /// (slab bytes, live bytes, free-list occupancy, compactions).
    pub fn arena_stats(&self) -> crate::arena::ArenaStats {
        self.store.arena_stats()
    }

    /// Whether an earlier pooled batch poisoned the engine: a worker
    /// panic was re-raised and caught by a caller, so the shard store
    /// may be lost mid-batch and the pool's response channel holds
    /// stale payloads.
    fn poisoned(&self) -> bool {
        self.pool.as_ref().is_some_and(ShardPool::poisoned)
    }

    /// Applies a batch according to the [`ApplyMode`] (same contract as
    /// [`TriangleIndex::apply`](crate::TriangleIndex::apply)).
    ///
    /// # Errors
    ///
    /// * [`StreamError::NodeOutOfRange`] if any delta references a node
    ///   outside the graph; the batch is then applied not at all.
    /// * [`StreamError::Poisoned`] if an earlier batch's worker panic
    ///   was caught by a caller: the engine's shard state is undefined,
    ///   so instead of sending jobs to a poisoned pool every further
    ///   apply is refused cleanly until [`recover`](Self::recover)
    ///   reseeds the engine from a known-good graph.
    pub fn apply(&mut self, batch: &DeltaBatch) -> Result<ApplyReport, StreamError> {
        if self.poisoned() {
            return Err(StreamError::Poisoned);
        }
        self.validate(batch)?;
        match self.mode {
            ApplyMode::Eager => Ok(self.apply_validated(batch)),
            ApplyMode::Deferred => {
                self.pending.buffer(batch);
                Ok(ApplyReport {
                    deltas_seen: batch.len(),
                    deltas_deferred: batch.len(),
                    ..ApplyReport::default()
                })
            }
        }
    }

    /// Coalesces and applies every buffered batch (no-op in eager mode or
    /// with nothing pending); same accounting as
    /// [`TriangleIndex::flush`](crate::TriangleIndex::flush).
    ///
    /// Large flushes hand the **raw** buffered stream straight to the
    /// two-phase pipeline (and so to the persistent pool): every worker
    /// already coalesces its own slice (and counts the ops it drops as
    /// no-ops), so the coalescing cost of a deferred flush is spread
    /// across the shard workers instead of being paid as a sequential
    /// `O(b log b)` step up front. Small flushes keep the central
    /// coalesce — they take the strictly ordered sequential path, which
    /// applies deltas one at a time and would otherwise pay per-delta for
    /// ops the coalescer discards for free.
    pub fn flush(&mut self) -> ApplyReport {
        if self.pending.is_empty() || self.poisoned() {
            // A poisoned engine refuses to touch its (possibly lost)
            // store: the buffered deltas stay pending and `apply`
            // reports the poisoning as a clean error.
            return ApplyReport::default();
        }
        let buffered = self.pending.take();
        let sequential = self.parallel_threshold > 0
            && (self.store.shard_count() == 1 || buffered.len() < self.parallel_threshold);
        let mut report = if sequential {
            let coalesced = buffered.coalesce();
            let mut report = self.apply_ordered(&coalesced);
            report.noops += buffered.len() - coalesced.len();
            report
        } else {
            self.apply_pipelined(&buffered)
        };
        report.deltas_seen = 0;
        report
    }

    /// Rebuilds a poisoned engine in place from `graph`, so one panicked
    /// job is not terminal for a long-lived writer (e.g. a
    /// [`TriangleServer`](crate::TriangleServer)'s): the dead pool is
    /// dropped — which closes its job channels and **joins every worker
    /// thread**, panicked ones included — the shard store, triangle set
    /// and support counters are reseeded from `graph`, and a fresh pool
    /// spawns lazily on the next pipelined batch. Apply mode, thresholds
    /// and accumulated telemetry survive; buffered deferred deltas do
    /// **not** (the batch that poisoned the engine may be half-applied,
    /// so `graph` is the new ground truth and older buffered intent
    /// cannot be replayed against it safely).
    ///
    /// `graph` is whatever consistent state the caller still holds — a
    /// published serve view frozen with [`snapshot`](Self::snapshot), a
    /// persisted checkpoint, or the base graph plus a replayable delta
    /// log. Calling this on a healthy engine is allowed and simply
    /// resets it to `graph`.
    pub fn recover(&mut self, graph: &Graph) {
        self.pool = None;
        self.store = ShardStore::new(graph.node_count(), self.store.shard_count());
        for node in graph.nodes() {
            self.store.seed(node, graph.neighbors(node));
        }
        self.triangles = congest_graph::triangles::list_all(graph);
        self.support = NodeSupport::seed_from(&self.triangles, graph.node_count());
        self.edge_count = graph.edge_count();
        self.pending = PendingBuffer::default();
    }

    /// Freezes the current graph (pending deltas excluded) into an
    /// immutable [`Graph`]. **O(m)**: every neighbour list is walked and
    /// re-inserted into a fresh builder, so this is a full copy of the
    /// adjacency — not a cheap view. Rarely needed now that the index
    /// itself is an [`AdjacencyView`] and
    /// [`TriangleServer`](crate::TriangleServer) leases give consistent
    /// O(1)-acquire read views; kept for callers that want an owned
    /// frozen [`Graph`].
    pub fn snapshot(&self) -> Graph {
        let mut b = GraphBuilder::new(self.node_count());
        for u in AdjacencyView::nodes(self) {
            for &v in self.neighbors(u) {
                if u < v {
                    b.add_edge(u, v).expect("index adjacency is always valid");
                }
            }
        }
        b.build()
    }

    /// Whether the live triangle set exactly equals a snapshot-free
    /// from-scratch recount on the index's own adjacency view.
    pub fn matches_oracle(&self) -> bool {
        self.triangles == congest_graph::triangles::list_all_on(self)
    }

    fn validate(&self, batch: &DeltaBatch) -> Result<(), StreamError> {
        validate_batch(batch, self.node_count())
    }

    /// Applies a pre-validated batch: the strictly ordered sequential path
    /// when the pipeline cannot pay for itself, the two-phase pipeline
    /// otherwise. Both paths leave the identical final graph and triangle
    /// set; on batches that flap an edge the per-batch tallies differ
    /// (the pipeline's coalescer counts dropped ops as no-ops where the
    /// ordered path applies them), which is why the paths are selected by
    /// size, never by content.
    fn apply_validated(&mut self, batch: &DeltaBatch) -> ApplyReport {
        let sequential = self.parallel_threshold > 0
            && (self.store.shard_count() == 1 || batch.len() < self.parallel_threshold);
        if sequential {
            self.apply_ordered(batch)
        } else {
            self.apply_pipelined(batch)
        }
    }

    /// The reference path: deltas applied one at a time, in order, exactly
    /// like [`TriangleIndex`](crate::TriangleIndex) — the degenerate
    /// single-shard configuration *is* the central algorithm, just stored
    /// across shard slots.
    fn apply_ordered(&mut self, batch: &DeltaBatch) -> ApplyReport {
        let mut report = ApplyReport {
            deltas_seen: batch.len(),
            ..ApplyReport::default()
        };
        let spec = self.store.spec();
        for delta in batch {
            let (u, v) = delta.edge.endpoints();
            let present = self.has_edge(u, v);
            match delta.op {
                DeltaOp::Insert => {
                    if present {
                        report.noops += 1;
                        continue;
                    }
                    for w in intersect_sorted(self.neighbors(u), self.neighbors(v)) {
                        let t = Triangle::new(u, v, w);
                        if self.triangles.insert(t) {
                            self.support.record(&t);
                            report.triangles_added += 1;
                        }
                    }
                    self.edge_count += 1;
                    report.inserts_applied += 1;
                }
                DeltaOp::Remove => {
                    if !present {
                        report.noops += 1;
                        continue;
                    }
                    for w in intersect_sorted(self.neighbors(u), self.neighbors(v)) {
                        let t = Triangle::new(u, v, w);
                        if self.triangles.remove(&t) {
                            self.support.retire(&t);
                            report.triangles_removed += 1;
                        }
                    }
                    self.edge_count -= 1;
                    report.removes_applied += 1;
                }
            }
            for (node, other) in [(u, v), (v, u)] {
                self.store.apply_routed(
                    spec.shard_of(node),
                    ShardOp {
                        local: spec.local_index(node),
                        other,
                        op: delta.op,
                    },
                );
            }
        }
        self.store.advance_epoch_held(self.reclaim_lag);
        report
    }

    /// The two-phase pipeline (see the [module documentation](self)):
    /// inline on one shard, on per-batch scoped threads under the
    /// [`with_per_batch_spawn`](ShardedTriangleIndex::with_per_batch_spawn)
    /// benchmark control, and on the persistent pool otherwise.
    fn apply_pipelined(&mut self, batch: &DeltaBatch) -> ApplyReport {
        let mut report = ApplyReport {
            deltas_seen: batch.len(),
            ..ApplyReport::default()
        };
        if batch.is_empty() {
            return report;
        }

        let spec = self.store.spec();
        let shard_count = spec.shard_count();

        // Split the raw deltas by the lower endpoint's owner: every edge
        // maps to exactly one worker, so each worker can coalesce and
        // classify its slice independently and per-delta tallies are
        // counted exactly once.
        let mut work: Vec<Vec<EdgeDelta>> = vec![Vec::new(); shard_count];
        for d in batch {
            work[spec.shard_of(d.edge.lo())].push(*d);
        }

        let plans = if shard_count == 1 {
            self.run_inline(&work, &mut report)
        } else if self.spawn_per_batch {
            self.run_spawn(&work, &mut report)
        } else {
            self.run_pooled(work, &mut report)
        };

        for plan in &plans {
            report.inserts_applied += plan.inserts_applied;
            report.removes_applied += plan.removes_applied;
            report.noops += plan.noops;
        }
        self.edge_count += report.inserts_applied;
        self.edge_count -= report.removes_applied;
        // Every undirected edge is recorded by both endpoint owners.
        debug_assert_eq!(
            self.store.half_edges(),
            2 * self.edge_count,
            "shard adjacency lost symmetry"
        );
        // One batch = one arena epoch: slabs freed by this batch's
        // churn become reusable (and oversized arenas compact) once no
        // read view of the pre-batch lists is live — immediately when
        // `reclaim_lag` is 0, deferred past the oldest reader lease
        // otherwise.
        self.store.advance_epoch_held(self.reclaim_lag);
        report
    }

    /// Single-shard pipeline: the same phases, inline — there is no
    /// cross-shard coordination to amortize and nothing to steal.
    fn run_inline(&mut self, work: &[Vec<EdgeDelta>], report: &mut ApplyReport) -> Vec<WorkerPlan> {
        let mut plans = Vec::with_capacity(work.len());
        for slice in work {
            let (mut plan, removals) = classify_slice(&self.store, slice);
            congest_obs::span!("sharded", "collect");
            collect_candidates(&self.store, &removals, &mut plan.removed);
            plans.push(plan);
        }
        {
            congest_obs::span!("sharded", "merge");
            for plan in &plans {
                report.triangles_removed += merge_removed_candidates_supported(
                    &mut self.triangles,
                    &mut self.support,
                    &plan.removed,
                );
            }
        }
        {
            congest_obs::span!("sharded", "record");
            for plan in &plans {
                for (dest, ops) in plan.ops.iter().enumerate() {
                    for &op in ops {
                        self.store.apply_routed(dest, op);
                    }
                }
            }
        }
        for plan in &plans {
            if plan.inserts.is_empty() {
                continue;
            }
            let mut candidates = Vec::new();
            {
                congest_obs::span!("sharded", "collect");
                collect_candidates(&self.store, &plan.inserts, &mut candidates);
            }
            congest_obs::span!("sharded", "merge");
            report.triangles_added += merge_added_candidates_supported(
                &mut self.triangles,
                &mut self.support,
                &candidates,
            );
        }
        plans
    }

    /// The pre-pool pipeline, kept as the benchmark baseline: three sets
    /// of scoped threads per batch, no stealing.
    fn run_spawn(&mut self, work: &[Vec<EdgeDelta>], report: &mut ApplyReport) -> Vec<WorkerPlan> {
        let store = &self.store;
        let plans: Vec<WorkerPlan> = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = work
                .iter()
                .map(|slice| {
                    scope.spawn(move || {
                        let (mut plan, removals) = classify_slice(store, slice);
                        congest_obs::span!("sharded", "collect");
                        collect_candidates(store, &removals, &mut plan.removed);
                        plan
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard worker panicked"))
                .collect()
        });

        {
            congest_obs::span!("sharded", "merge");
            for plan in &plans {
                report.triangles_removed += merge_removed_candidates_supported(
                    &mut self.triangles,
                    &mut self.support,
                    &plan.removed,
                );
            }
        }

        let mut routed: Vec<Vec<ShardOp>> = vec![Vec::new(); work.len()];
        for plan in &plans {
            for (dest, ops) in plan.ops.iter().enumerate() {
                routed[dest].extend_from_slice(ops);
            }
        }
        let mut shards = self.store.take_shards();
        {
            congest_obs::span!("sharded", "record");
            crossbeam::thread::scope(|scope| {
                for (shard, ops) in shards.iter_mut().zip(&routed) {
                    scope.spawn(move || {
                        // Copy-on-write: in place while no published
                        // view pins the shard, a clone otherwise.
                        let shard = Arc::make_mut(shard);
                        for &op in ops {
                            shard.apply_op(op);
                        }
                    });
                }
            });
        }
        self.store.restore_shards(shards);

        if plans.iter().any(|p| !p.inserts.is_empty()) {
            let store = &self.store;
            let added: Vec<Vec<Triangle>> = crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = plans
                    .iter()
                    .map(|plan| {
                        scope.spawn(move || {
                            congest_obs::span!("sharded", "collect");
                            let mut out = Vec::new();
                            collect_candidates(store, &plan.inserts, &mut out);
                            out
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("shard worker panicked"))
                    .collect()
            });
            congest_obs::span!("sharded", "merge");
            for candidates in &added {
                report.triangles_added += merge_added_candidates_supported(
                    &mut self.triangles,
                    &mut self.support,
                    candidates,
                );
            }
        }
        plans
    }

    /// The pool-backed pipeline: ownership of the store round-trips
    /// through the persistent workers (see [`crate::pool`]); removal
    /// candidates are merged on this thread *while* the workers run the
    /// record phase, and the batch's busy-share/steal telemetry is
    /// accumulated at the end.
    fn run_pooled(
        &mut self,
        work: Vec<Vec<EdgeDelta>>,
        report: &mut ApplyReport,
    ) -> Vec<WorkerPlan> {
        let shard_count = work.len();
        // `apply`/`flush` refuse poisoned engines before reaching this
        // point, so the only reason to respawn is a worker-count change.
        let needs_fresh_pool = match self.pool.as_ref() {
            Some(pool) => pool.worker_count() != shard_count,
            None => true,
        };
        if needs_fresh_pool {
            self.pool = Some(ShardPool::new(shard_count));
        }
        let pool = self.pool.as_ref().expect("pool was just ensured");
        let mut run = BatchRun::new(pool, self.split_threshold);

        // Phase 1: collect (read-only). Workers whose removal slice
        // exceeds the split threshold defer it instead of intersecting.
        let collect_span = congest_obs::trace::span("pool", "collect_wave");
        let (store, mut plans) = run.collect(std::mem::take(&mut self.store), work);
        self.store = store;
        drop(collect_span);

        // Phase 1.5: the steal wave, only when something was deferred —
        // every deferred slice is chunked onto the shared queue before
        // any worker starts draining, so a hot hub's candidate
        // collection reliably spreads across the whole pool. Must run
        // before the record phase: removal candidates intersect the
        // *pre-batch* adjacency.
        let mut wave_removed: Vec<Triangle> = Vec::new();
        if plans.iter().any(|p| !p.deferred_removals.is_empty()) {
            congest_obs::span!("pool", "steal_wave");
            let deferred: Vec<(usize, Vec<Edge>)> = plans
                .iter_mut()
                .enumerate()
                .filter(|(_, p)| !p.deferred_removals.is_empty())
                .map(|(owner, p)| (owner, std::mem::take(&mut p.deferred_removals)))
                .collect();
            let (store, waves) = run.steal_wave(std::mem::take(&mut self.store), deferred);
            self.store = store;
            wave_removed = waves.into_iter().flatten().collect();
        }

        // Phase 1.75: the record-prepare wave — a shard whose routed
        // mutations exceed the split threshold has them resolved into
        // ready-to-seed post-batch lists by the whole pool (pre-seeded
        // queue, same discipline as the steal wave) instead of applied
        // serially by its owner.
        let mut routed: Vec<Vec<ShardOp>> = vec![Vec::new(); shard_count];
        for plan in &plans {
            for (dest, ops) in plan.ops.iter().enumerate() {
                routed[dest].extend_from_slice(ops);
            }
        }
        let prepare_span = congest_obs::trace::span("pool", "prepare_wave");
        let (store, prepared) = run.record_wave(std::mem::take(&mut self.store), &mut routed);
        self.store = store;
        drop(prepare_span);

        // Phase 2: move each shard to its owning worker; merge the
        // removal candidates here while the workers write.
        let record_span = congest_obs::trace::span("pool", "record_wave");
        run.start_record(self.store.take_shards(), routed, prepared);
        {
            congest_obs::span!("sharded", "merge");
            for plan in &plans {
                report.triangles_removed += merge_removed_candidates_supported(
                    &mut self.triangles,
                    &mut self.support,
                    &plan.removed,
                );
            }
            report.triangles_removed += merge_removed_candidates_supported(
                &mut self.triangles,
                &mut self.support,
                &wave_removed,
            );
        }
        self.store.restore_shards(run.finish_record());
        drop(record_span);

        // Phase 3: the triangles each effective insertion closes on the
        // post-batch adjacency.
        if plans.iter().any(|p| !p.inserts.is_empty()) {
            congest_obs::span!("pool", "insert_wave");
            let inserts: Vec<Vec<Edge>> = plans
                .iter_mut()
                .map(|p| std::mem::take(&mut p.inserts))
                .collect();
            let (store, candidates) = run.insert_collect(std::mem::take(&mut self.store), inserts);
            self.store = store;
            congest_obs::span!("sharded", "merge");
            for c in &candidates {
                report.triangles_added +=
                    merge_added_candidates_supported(&mut self.triangles, &mut self.support, c);
            }
        }

        let stats = run.finish();
        self.telemetry.record(stats);
        self.adapt_split_threshold(stats);
        plans
    }

    /// The adaptive split-threshold controller: one multiplicative step
    /// per pooled batch, driven by the batch's busy-share imbalance
    /// (max/mean — 1.0 means perfectly even, `S` means one worker did
    /// everything), gated on the pool actually being compute-saturated
    /// ([`SATURATION_FLOOR`]): an imbalanced-but-idle pool means the
    /// batch is bounded by handoff, and more splitting only adds queue
    /// traffic. Disabled when the threshold was pinned with
    /// [`with_split_threshold`](ShardedTriangleIndex::with_split_threshold).
    fn adapt_split_threshold(&mut self, stats: BatchStats) {
        if !self.split_threshold_adaptive {
            return;
        }
        let imbalance = stats.busy_max_share / stats.busy_mean_share.max(f64::EPSILON);
        if stats.busy_max_share < SATURATION_FLOOR || imbalance < IMBALANCE_LOW {
            self.split_threshold = (self.split_threshold * 2).min(MAX_SPLIT_THRESHOLD);
        } else if imbalance > IMBALANCE_HIGH {
            self.split_threshold = (self.split_threshold / 2).max(MIN_SPLIT_THRESHOLD);
        }
    }
}

/// The sharded index *is* an adjacency view (pending deltas excluded):
/// the oracle and the CONGEST drivers run on it directly — no snapshot.
impl AdjacencyView for ShardedTriangleIndex {
    fn node_count(&self) -> usize {
        ShardedTriangleIndex::node_count(self)
    }

    fn neighbors(&self, node: NodeId) -> &[NodeId] {
        ShardedTriangleIndex::neighbors(self, node)
    }

    fn edge_count(&self) -> usize {
        ShardedTriangleIndex::edge_count(self)
    }

    fn degree(&self, node: NodeId) -> usize {
        ShardedTriangleIndex::degree(self, node)
    }

    fn has_edge(&self, a: NodeId, b: NodeId) -> bool {
        ShardedTriangleIndex::has_edge(self, a, b)
    }
}

impl fmt::Debug for ShardedTriangleIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ShardedTriangleIndex(n={}, m={}, shards={}, triangles={}, mode={}, exec={})",
            self.node_count(),
            self.edge_count(),
            self.shard_count(),
            self.triangle_count(),
            self.mode.name(),
            if self.spawn_per_batch {
                "spawn"
            } else {
                "pool"
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_graph::generators::{Classic, Gnp};
    use congest_graph::triangles as oracle;

    fn v(i: u32) -> NodeId {
        NodeId(i)
    }

    /// Forces the pool-backed pipeline even on tiny batches.
    fn parallel(index: ShardedTriangleIndex) -> ShardedTriangleIndex {
        index.with_parallel_threshold(0)
    }

    /// Synthetic batch stats for driving the controller directly.
    fn stats(busy_max_share: f64, busy_mean_share: f64) -> BatchStats {
        BatchStats {
            busy_max_share,
            busy_mean_share,
            steals: 0,
            record_split_tasks: 0,
        }
    }

    #[test]
    fn split_threshold_controller_halves_doubles_clamps_and_gates() {
        let mut idx = ShardedTriangleIndex::new(8, 4);
        assert_eq!(idx.split_threshold, DEFAULT_SPLIT_THRESHOLD);

        // Saturated and imbalanced: halve, down to the floor.
        for _ in 0..20 {
            idx.adapt_split_threshold(stats(0.9, 0.3));
        }
        assert_eq!(idx.split_threshold, MIN_SPLIT_THRESHOLD);

        // Saturated and even: double, up to the ceiling.
        for _ in 0..20 {
            idx.adapt_split_threshold(stats(0.9, 0.85));
        }
        assert_eq!(idx.split_threshold, MAX_SPLIT_THRESHOLD);

        // In the dead band between the two imbalance edges: hold.
        idx.split_threshold = DEFAULT_SPLIT_THRESHOLD;
        idx.adapt_split_threshold(stats(0.9, 0.9 / 1.3));
        assert_eq!(idx.split_threshold, DEFAULT_SPLIT_THRESHOLD);

        // Imbalanced but idle (oversubscribed pool, busiest worker well
        // under the saturation floor): back off instead of splitting —
        // extra stealable tasks cannot shorten a handoff-bound batch.
        idx.adapt_split_threshold(stats(0.2, 0.1));
        assert_eq!(idx.split_threshold, DEFAULT_SPLIT_THRESHOLD * 2);

        // A pinned threshold never moves.
        let mut pinned = ShardedTriangleIndex::new(8, 4).with_split_threshold(512);
        pinned.adapt_split_threshold(stats(0.9, 0.3));
        assert_eq!(pinned.split_threshold, 512);
    }

    #[test]
    fn empty_index_counts_nothing() {
        let idx = ShardedTriangleIndex::new(5, 3);
        assert_eq!(idx.node_count(), 5);
        assert_eq!(idx.shard_count(), 3);
        assert_eq!(idx.edge_count(), 0);
        assert_eq!(idx.triangle_count(), 0);
        assert!(idx.matches_oracle());
    }

    #[test]
    fn inserting_a_triangle_step_by_step() {
        let mut idx = parallel(ShardedTriangleIndex::new(4, 2));
        let mut b = DeltaBatch::new();
        b.insert(v(0), v(1)).insert(v(1), v(2));
        let r = idx.apply(&b).unwrap();
        assert_eq!(r.inserts_applied, 2);
        assert_eq!(r.triangles_added, 0);

        let mut close = DeltaBatch::new();
        close.insert(v(0), v(2));
        let r = idx.apply(&close).unwrap();
        assert_eq!(r.triangles_added, 1);
        assert_eq!(idx.triangle_count(), 1);
        assert!(idx.triangles().contains(&Triangle::new(v(0), v(1), v(2))));
        assert!(idx.matches_oracle());
    }

    #[test]
    fn one_batch_inserting_a_whole_triangle_counts_it_once() {
        // All three edges of the triangle arrive in one batch; every edge
        // is an insert candidate generator, the merge dedupes to one.
        for shards in [1, 2, 3, 5] {
            let mut idx = parallel(ShardedTriangleIndex::new(4, shards));
            let mut b = DeltaBatch::new();
            b.insert(v(0), v(1)).insert(v(1), v(2)).insert(v(0), v(2));
            let r = idx.apply(&b).unwrap();
            assert_eq!(r.triangles_added, 1, "shards={shards}");
            assert_eq!(idx.triangle_count(), 1);
            assert!(idx.matches_oracle());
        }
    }

    #[test]
    fn one_batch_removing_two_edges_of_a_triangle_counts_it_once() {
        for shards in [1, 2, 4] {
            let k4 = Classic::Complete(4).generate();
            let mut idx = parallel(ShardedTriangleIndex::from_graph(&k4, shards));
            assert_eq!(idx.triangle_count(), 4);
            let mut b = DeltaBatch::new();
            b.remove(v(0), v(1)).remove(v(1), v(2));
            let r = idx.apply(&b).unwrap();
            // {0,1,2} dies by two of its edges but is counted once;
            // {0,1,3} and {1,2,3} die by one edge each.
            assert_eq!(r.triangles_removed, 3, "shards={shards}");
            assert_eq!(idx.triangle_count(), 1);
            assert!(idx.matches_oracle());
        }
    }

    #[test]
    fn mixed_insert_and_remove_batch_matches_oracle() {
        // Removing a wing edge while inserting the closing edge of the
        // same would-be triangle: the insert must not report a triangle
        // whose wing died in the same batch.
        let mut base = DeltaBatch::new();
        base.insert(v(0), v(1)).insert(v(1), v(2));
        for shards in [1, 2, 3] {
            let mut idx = parallel(ShardedTriangleIndex::new(4, shards));
            idx.apply(&base).unwrap();
            let mut b = DeltaBatch::new();
            b.remove(v(1), v(2)).insert(v(0), v(2));
            let r = idx.apply(&b).unwrap();
            assert_eq!(r.triangles_added, 0, "shards={shards}");
            assert_eq!(r.triangles_removed, 0);
            assert_eq!(idx.triangle_count(), 0);
            assert!(idx.matches_oracle());
        }
    }

    #[test]
    fn from_graph_seeds_every_shard() {
        let g = Gnp::new(40, 0.2).seeded(9).generate();
        for shards in [1, 2, 7] {
            let idx = ShardedTriangleIndex::from_graph(&g, shards);
            assert_eq!(idx.edge_count(), g.edge_count());
            assert_eq!(idx.triangles(), &oracle::list_all(&g));
            for node in g.nodes() {
                assert_eq!(idx.neighbors(node), g.neighbors(node));
            }
            // A consistent frozen view comes from a serve lease now (a
            // pinned epoch), not from the O(m) `snapshot()` copy.
            let server = crate::TriangleServer::new(idx);
            let lease = server.handle().lease();
            assert_eq!(AdjacencyView::edge_count(&lease), g.edge_count());
            for node in g.nodes() {
                assert_eq!(AdjacencyView::neighbors(&lease, node), g.neighbors(node));
            }
        }
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        let idx = ShardedTriangleIndex::new(4, 0);
        assert_eq!(idx.shard_count(), 1);
    }

    #[test]
    fn out_of_range_batch_is_rejected_atomically() {
        let mut idx = ShardedTriangleIndex::new(3, 2);
        let mut b = DeltaBatch::new();
        b.insert(v(0), v(1)).insert(v(0), v(7));
        let err = idx.apply(&b).unwrap_err();
        assert_eq!(
            err,
            StreamError::NodeOutOfRange {
                node: v(7),
                node_count: 3
            }
        );
        assert_eq!(idx.edge_count(), 0);
    }

    #[test]
    fn deferred_mode_buffers_until_flush() {
        let mut idx = parallel(ShardedTriangleIndex::new(3, 2)).with_mode(ApplyMode::Deferred);
        assert_eq!(idx.mode(), ApplyMode::Deferred);
        let mut b = DeltaBatch::new();
        b.insert(v(0), v(1)).insert(v(1), v(2)).insert(v(0), v(2));
        let r = idx.apply(&b).unwrap();
        assert_eq!(r.deltas_deferred, 3);
        assert_eq!(idx.triangle_count(), 0);
        assert_eq!(idx.pending_deltas(), 3);
        assert!(idx.pending_age().is_some());

        let r = idx.flush();
        assert_eq!(r.deltas_seen, 0);
        assert_eq!(r.inserts_applied, 3);
        assert_eq!(r.triangles_added, 1);
        assert_eq!(idx.pending_deltas(), 0);
        assert!(idx.pending_age().is_none());
        assert!(idx.matches_oracle());
    }

    #[test]
    fn deferred_flap_costs_nothing_at_flush() {
        let mut idx = ShardedTriangleIndex::new(4, 2).with_mode(ApplyMode::Deferred);
        let mut flap = DeltaBatch::new();
        flap.insert(v(0), v(1)).remove(v(0), v(1));
        idx.apply(&flap).unwrap();
        let r = idx.flush();
        assert_eq!(r.deltas_seen, 0);
        assert_eq!(r.inserts_applied, 0);
        assert_eq!(r.removes_applied, 0);
        // The insert was coalesced away; the surviving remove is a no-op.
        assert_eq!(r.noops, 2);
        assert_eq!(idx.edge_count(), 0);
    }

    #[test]
    fn large_deferred_flush_runs_the_pipeline_and_keeps_the_accounting() {
        use crate::index::TriangleIndex;
        // Threshold 0 forces the pipeline, so this flush exercises the
        // worker-local coalesce of the raw buffered stream (no central
        // pre-coalesce).
        let g = Gnp::new(40, 0.15).seeded(3).generate();
        let mut idx =
            parallel(ShardedTriangleIndex::from_graph(&g, 3)).with_mode(ApplyMode::Deferred);
        let mut reference = TriangleIndex::from_graph(&g).with_mode(ApplyMode::Deferred);

        // A stream with heavy flapping: the same edges are hit repeatedly
        // across buffered batches, so coalescing has real work to do.
        let mut total = 0usize;
        for step in 0..6u32 {
            let mut b = DeltaBatch::new();
            for j in 0..30u32 {
                let a = (j * 3 + step) % 40;
                let c = (j * 7 + 2 * step + 1) % 40;
                if a == c {
                    continue;
                }
                if (step + j) % 2 == 0 {
                    b.insert(v(a), v(c));
                } else {
                    b.remove(v(a), v(c));
                }
            }
            total += b.len();
            idx.apply(&b).unwrap();
            reference.apply(&b).unwrap();
        }
        let r = idx.flush();
        reference.flush();
        // Flush accounting: deltas were counted as seen when buffered, and
        // every buffered delta lands in exactly one tally here.
        assert_eq!(r.deltas_seen, 0);
        assert_eq!(r.inserts_applied + r.removes_applied + r.noops, total);
        // Same final state as the single-threaded engine's flush.
        assert_eq!(idx.triangles(), reference.triangles());
        assert_eq!(idx.edge_count(), reference.edge_count());
        assert!(idx.matches_oracle());
    }

    #[test]
    fn small_deferred_flush_keeps_the_ordered_path_accounting() {
        // Default threshold: a 2-delta flush goes through the sequential
        // path with a central coalesce, preserving the historical tallies
        // (see `deferred_flap_costs_nothing_at_flush`).
        let mut idx = ShardedTriangleIndex::new(4, 2).with_mode(ApplyMode::Deferred);
        let mut flap = DeltaBatch::new();
        flap.insert(v(0), v(1))
            .remove(v(0), v(1))
            .insert(v(2), v(3));
        idx.apply(&flap).unwrap();
        let r = idx.flush();
        assert_eq!(r.deltas_seen, 0);
        assert_eq!(r.inserts_applied, 1); // {2,3}
        assert_eq!(r.removes_applied, 0);
        assert_eq!(r.noops, 2); // the flap
        assert!(idx.has_edge(v(2), v(3)));
    }

    #[test]
    fn switching_modes_flushes_pending_deltas_in_order() {
        let mut ins = DeltaBatch::new();
        ins.insert(v(0), v(1));
        let mut idx = ShardedTriangleIndex::new(2, 2).with_mode(ApplyMode::Deferred);
        idx.apply(&ins).unwrap();
        let idx = idx.with_mode(ApplyMode::Eager);
        assert_eq!(idx.pending_deltas(), 0);
        assert!(idx.has_edge(v(0), v(1)));
    }

    #[test]
    fn agrees_with_the_single_threaded_index_on_a_stream() {
        use crate::index::TriangleIndex;
        let g = Gnp::new(60, 0.12).seeded(11).generate();
        let mut reference = TriangleIndex::from_graph(&g);
        let mut sharded = parallel(ShardedTriangleIndex::from_graph(&g, 4));
        for step in 0..20u32 {
            let mut b = DeltaBatch::new();
            for j in 0..10u32 {
                let a = (step * 7 + j * 13) % 60;
                let c = (step * 11 + j * 17 + 1) % 60;
                if a != c {
                    if (step + j) % 3 == 0 {
                        b.remove(v(a), v(c));
                    } else {
                        b.insert(v(a), v(c));
                    }
                }
            }
            reference.apply(&b).unwrap();
            sharded.apply(&b).unwrap();
            assert_eq!(reference.triangles(), sharded.triangles(), "step {step}");
            assert_eq!(reference.edge_count(), sharded.edge_count());
        }
        assert!(sharded.matches_oracle());
    }

    #[test]
    fn spawn_mode_and_pool_mode_reach_the_same_state() {
        let g = Gnp::new(50, 0.15).seeded(17).generate();
        let mut pool = parallel(ShardedTriangleIndex::from_graph(&g, 3));
        let mut spawn = parallel(ShardedTriangleIndex::from_graph(&g, 3)).with_per_batch_spawn();
        for step in 0..8u32 {
            let mut b = DeltaBatch::new();
            for j in 0..12u32 {
                let a = (step * 5 + j * 11) % 50;
                let c = (step * 13 + j * 7 + 1) % 50;
                if a != c {
                    if (step + j) % 4 == 0 {
                        b.remove(v(a), v(c));
                    } else {
                        b.insert(v(a), v(c));
                    }
                }
            }
            let rp = pool.apply(&b).unwrap();
            let rs = spawn.apply(&b).unwrap();
            assert_eq!(rp, rs, "step {step}: per-batch tallies must match");
            assert_eq!(pool.triangles(), spawn.triangles(), "step {step}");
        }
        assert!(pool.matches_oracle());
        assert!(spawn.matches_oracle());
        // Only the pool path produces worker telemetry.
        assert!(pool.worker_telemetry().is_some());
        assert!(spawn.worker_telemetry().is_none());
    }

    #[test]
    fn forced_steal_path_matches_the_ordered_engine_on_a_hub() {
        use crate::index::TriangleIndex;
        // A single max-degree hub: every delta touches node 0, so the
        // modulo partition puts the whole batch on worker 0 — with a zero
        // split threshold every intersection becomes a stealable task.
        let n = 40usize;
        let mut reference = TriangleIndex::new(n);
        let mut idx = parallel(ShardedTriangleIndex::new(n, 4)).with_split_threshold(0);
        // Build the star plus a rim so removals have triangles to retire.
        let mut star = DeltaBatch::new();
        for i in 1..n as u32 {
            star.insert(v(0), v(i));
        }
        for i in 1..(n as u32 - 1) {
            star.insert(v(i), v(i + 1));
        }
        reference.apply(&star).unwrap();
        idx.apply(&star).unwrap();
        assert_eq!(idx.triangles(), reference.triangles());

        // Tear half the hub down in one batch.
        let mut tear = DeltaBatch::new();
        for i in 1..(n as u32 / 2) {
            tear.remove(v(0), v(i));
        }
        let rr = reference.apply(&tear).unwrap();
        let rs = idx.apply(&tear).unwrap();
        assert_eq!(rs.triangles_removed, rr.triangles_removed);
        assert_eq!(idx.triangles(), reference.triangles());
        assert!(idx.matches_oracle());
        let telemetry = idx.worker_telemetry().expect("pool batches ran");
        assert!(telemetry.pooled_batches >= 2);
    }

    #[test]
    fn apply_after_worker_panic_returns_a_clean_error() {
        use crate::delta::DeltaOp;
        use crate::pool::BatchRun;
        use crate::shard::Shard;

        let mut idx = parallel(ShardedTriangleIndex::new(8, 2));
        let mut b = DeltaBatch::new();
        b.insert(v(0), v(1)).insert(v(1), v(2)).insert(v(0), v(2));
        idx.apply(&b).expect("healthy engine applies");
        assert!(!idx.poisoned());

        // Poison the engine's own pool the way a real mid-batch worker
        // panic does: an out-of-range routed op makes a worker panic,
        // the engine-side recv re-raises, and a caller catches it.
        {
            let pool = idx.pool.as_ref().expect("pool spawned on first batch");
            let mut run = BatchRun::new(pool, 0);
            run.start_record(
                vec![Arc::new(Shard::new(1)), Arc::new(Shard::new(1))],
                vec![
                    vec![ShardOp {
                        local: 99,
                        other: v(1),
                        op: DeltaOp::Insert,
                    }],
                    Vec::new(),
                ],
                vec![Vec::new(), Vec::new()],
            );
            let caught =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run.finish_record()));
            assert!(caught.is_err());
        }
        assert!(idx.poisoned());

        // Subsequent applies fail cleanly instead of sending jobs to a
        // pool whose response channel holds stale payloads.
        let mut more = DeltaBatch::new();
        more.insert(v(3), v(4));
        assert_eq!(idx.apply(&more).unwrap_err(), StreamError::Poisoned);
        // Flushing refuses to touch the store too (and keeps nothing
        // half-applied).
        assert_eq!(idx.flush(), ApplyReport::default());
    }

    #[test]
    fn recover_after_worker_panic_resumes_oracle_exact_applies() {
        use crate::delta::DeltaOp;
        use crate::index::TriangleIndex;
        use crate::pool::BatchRun;
        use crate::shard::Shard;

        let g = Gnp::new(24, 0.2).seeded(23).generate();
        let mut idx = parallel(ShardedTriangleIndex::from_graph(&g, 3));
        let mut b = DeltaBatch::new();
        b.insert(v(0), v(1)).insert(v(1), v(2)).insert(v(0), v(2));
        idx.apply(&b).expect("healthy engine applies");
        // The consistent state a real writer would still hold (published
        // view / checkpoint), frozen before the poisoning batch.
        let checkpoint = idx.snapshot();

        // Poison the engine's own pool the way a mid-batch worker panic
        // does (see `apply_after_worker_panic_returns_a_clean_error`).
        {
            let pool = idx.pool.as_ref().expect("pool spawned on first batch");
            let mut run = BatchRun::new(pool, 0);
            run.start_record(
                vec![
                    Arc::new(Shard::new(1)),
                    Arc::new(Shard::new(1)),
                    Arc::new(Shard::new(1)),
                ],
                vec![
                    vec![ShardOp {
                        local: 99,
                        other: v(1),
                        op: DeltaOp::Insert,
                    }],
                    Vec::new(),
                    Vec::new(),
                ],
                vec![Vec::new(), Vec::new(), Vec::new()],
            );
            let caught =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run.finish_record()));
            assert!(caught.is_err());
        }
        assert!(idx.poisoned());
        let mut refused = DeltaBatch::new();
        refused.insert(v(3), v(4));
        assert_eq!(idx.apply(&refused).unwrap_err(), StreamError::Poisoned);

        // Recovery from the checkpoint: the dead pool is joined, state
        // reseeds, and pooled applies resume oracle-exactly.
        idx.recover(&checkpoint);
        assert!(!idx.poisoned());
        let mut reference = TriangleIndex::from_graph(&checkpoint);
        for step in 0..4u32 {
            let mut b = DeltaBatch::new();
            for j in 0..10u32 {
                let a = (step * 7 + j * 5) % 24;
                let c = (step * 3 + j * 11 + 1) % 24;
                if a != c {
                    if (step + j) % 3 == 0 {
                        b.remove(v(a), v(c));
                    } else {
                        b.insert(v(a), v(c));
                    }
                }
            }
            let rr = reference.apply(&b).expect("reference applies");
            let rs = idx.apply(&b).expect("recovered engine applies");
            assert_eq!(rr, rs, "step {step}");
            assert_eq!(idx.triangles(), reference.triangles(), "step {step}");
        }
        assert!(idx.matches_oracle());
        // The recovered engine went back through the (fresh) pool.
        assert!(idx.pool.is_some(), "a new pool spawned after recovery");
    }

    #[test]
    fn clones_share_state_but_not_the_pool() {
        let mut idx = parallel(ShardedTriangleIndex::new(6, 3));
        let mut b = DeltaBatch::new();
        b.insert(v(0), v(1)).insert(v(1), v(2)).insert(v(0), v(2));
        idx.apply(&b).unwrap();

        // The clone starts with the same state and lazily spawns its own
        // workers on the next pipelined batch.
        let mut copy = idx.clone();
        assert_eq!(copy.triangle_count(), 1);
        let mut more = DeltaBatch::new();
        more.insert(v(3), v(4))
            .insert(v(4), v(5))
            .insert(v(3), v(5));
        copy.apply(&more).unwrap();
        assert_eq!(copy.triangle_count(), 2);
        assert_eq!(idx.triangle_count(), 1, "the original is unaffected");
        assert!(copy.matches_oracle());
    }

    #[test]
    fn debug_summarizes() {
        let idx = ShardedTriangleIndex::new(6, 2);
        let s = format!("{idx:?}");
        assert!(s.contains("n=6"));
        assert!(s.contains("shards=2"));
        assert!(s.contains("exec=pool"));
        assert!(format!(
            "{:?}",
            ShardedTriangleIndex::new(2, 2).with_per_batch_spawn()
        )
        .contains("exec=spawn"));
    }
}
