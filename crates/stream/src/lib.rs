//! # congest-stream — incremental triangle engine over batched edge deltas
//!
//! The paper's algorithms answer one-shot queries on a static graph; a
//! service facing continuous traffic instead sees an *evolving* graph and
//! must keep its triangle set current. This crate provides that layer:
//!
//! * [`TriangleIndex`] — maintains adjacency **and** the live
//!   [`TriangleSet`](congest_graph::TriangleSet) under [`DeltaBatch`]es of
//!   edge insertions/removals. Each delta only pays a common-neighbour
//!   intersection on its two endpoints (walked from the lower-degree side),
//!   so a batch costs `O(batch · d̄ log d_max)` instead of the
//!   `O(m^{3/2})` of a from-scratch recount. [`ApplyMode::Eager`] applies
//!   immediately; [`ApplyMode::Deferred`] coalesces overlapping batches
//!   (only the last op per edge survives) before paying.
//! * [`Scenario`] / [`WorkloadRunner`] — a load-test harness: deterministic
//!   update streams (uniform churn, hotspot/power-law churn,
//!   planted-triangle bursts, grow-then-shrink) over the existing
//!   `congest-graph` generators, driven at an optional target batch rate,
//!   summarized as throughput, latency percentiles and
//!   incremental-vs-recompute speedup ([`RunSummary`], JSON-serializable).
//!
//! The centralized reference listing
//! ([`congest_graph::triangles::list_all`]) is both the seed for
//! [`TriangleIndex::from_graph`] and the correctness oracle: the engine's
//! invariant, enforced by property tests, is that after **any** sequence of
//! batches the live set equals a from-scratch recount.
//!
//! ```
//! use congest_graph::generators::Gnp;
//! use congest_stream::{ApplyMode, DeltaBatch, Scenario, TriangleIndex, WorkloadRunner};
//!
//! // Incremental maintenance…
//! let base = Gnp::new(50, 0.1).seeded(2).generate();
//! let mut index = TriangleIndex::from_graph(&base);
//! let mut batch = DeltaBatch::new();
//! batch.insert(congest_graph::NodeId(0), congest_graph::NodeId(1));
//! index.apply(&batch).unwrap();
//! assert!(index.matches_oracle());
//!
//! // …and load-testing it.
//! let summary = WorkloadRunner::new(Scenario::uniform_churn(50, 5, 10))
//!     .with_mode(ApplyMode::Deferred)
//!     .verified(true)
//!     .run();
//! assert!(summary.oracle_ok);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod delta;
mod index;
mod runner;
mod workload;

pub use delta::{DeltaBatch, DeltaOp, EdgeDelta};
pub use index::{ApplyMode, ApplyReport, StreamError, TriangleIndex};
pub use runner::{LatencyStats, RecomputeStats, RunSummary, WorkloadRunner};
pub use workload::{BaseGraph, Scenario, ScenarioKind};
