//! # congest-stream — incremental triangle engine over batched edge deltas
//!
//! The paper's algorithms answer one-shot queries on a static graph; a
//! service facing continuous traffic instead sees an *evolving* graph and
//! must keep its triangle set current. This crate provides that layer:
//!
//! * [`TriangleIndex`] — the single-threaded engine: maintains adjacency
//!   **and** the live [`TriangleSet`](congest_graph::TriangleSet) under
//!   [`DeltaBatch`]es of edge insertions/removals. Each delta only pays a
//!   common-neighbour intersection on its two endpoints (walked from the
//!   lower-degree side), so a batch costs `O(batch · d̄ log d_max)`
//!   instead of the `O(m^{3/2})` of a from-scratch recount.
//!   [`ApplyMode::Eager`] applies immediately; [`ApplyMode::Deferred`]
//!   coalesces overlapping batches (only the last op per edge survives)
//!   before paying.
//! * [`ShardedTriangleIndex`] — the multi-core engine: adjacency is
//!   partitioned across `S` shards by node hash (`id mod S`), each shard
//!   owning the full neighbour lists of its nodes, and a batch applies in
//!   two phases — shard-parallel collect/record on a **persistent worker
//!   pool** (spawned once per engine, fed over channels, with oversized
//!   hub slices split into stealable task units so hot vertices don't
//!   serialize their worker), then a merge that dedupes triangle deltas
//!   so each triangle is counted exactly once (the type's documentation
//!   walks through the full pipeline; per-run balance is observable via
//!   [`WorkerTelemetry`]). **Picking `S`**: use the number of available
//!   cores for sustained churn (the `stream_bench` sweep measures S ∈
//!   {1, 2, 4, 8}); small batches (or `S = 1`) automatically take the
//!   strictly ordered sequential path, so a sharded index never loses
//!   more than a few percent where parallelism cannot pay.
//! * [`DistributedTriangleEngine`] — the **distributed dynamic** engine:
//!   every graph node is a node of a simulated CONGEST network that owns
//!   its adjacency slice, and each batch runs as one epoch of
//!   `congest-sim`'s resumable engine — effective deltas are broadcast
//!   to the affected neighbourhoods under the B-bit per-link budget
//!   (with [`HubSplit`] helper-splitting, over-budget hubs shed
//!   broadcast slices to their deltas' other endpoints, so hotspot
//!   epochs scale with the *average* rather than the maximum incident
//!   load), third vertices detect triangle births/deaths locally, and
//!   the candidate sets are dedup-merged up a BFS-forest
//!   [`Aggregation::Convergecast`] in accounted rounds (the same
//!   exactly-once dedup core the sharded engine uses; the unaccounted
//!   [`Aggregation::Free`] merge survives as the bench control). It
//!   reports per-batch round/message cost ([`CongestCost`], with the
//!   aggregation rounds split out) — the paper's yardstick — which the
//!   `dynamic_bench` harness compares against re-running the Theorem 1/2
//!   drivers per batch (≥5x floor; ~100x in practice even while paying
//!   for its own merge).
//! * [`TriangleServer`] / [`ServeHandle`] / [`Lease`] — the serving
//!   layer: one writer applies batches and publishes **epoch-stamped
//!   read snapshots** (an O(S) handle-copy per batch; shards are shared
//!   copy-on-write `Arc`s), while any number of reader sessions pin the
//!   last published epoch with a lease and answer queries — triangle
//!   count, per-node/per-edge support, edge-in-triangle, top-k-support
//!   — against that consistent view. Readers never block the write
//!   pipeline and the writer never waits on readers; the arena's
//!   epoch-stamped free lists defer slab reuse until the oldest lease
//!   advances. `serve_bench` drives it with an open-loop load generator
//!   and gates the max-sustainable-rps and read-latency numbers.
//! * [`StreamEngine`] — the trait all engines implement; the harness is
//!   generic over it. Its [`AdjacencyView`](congest_graph::AdjacencyView)
//!   supertrait is what makes the layer **snapshot-free**: the
//!   centralized oracle and the paper's Theorem 1/2 drivers run directly
//!   on a live index with no `O(m)` rebuild.
//! * [`BatchSource`] / [`Scenario`] / [`Replay`] — where batches come
//!   from: [`Scenario`] generates the four deterministic synthetic
//!   families (uniform churn, hotspot/power-law churn, planted-triangle
//!   bursts, grow-then-shrink) over the existing `congest-graph`
//!   generators, and [`Replay`] chops a loaded temporal edge-list file
//!   ([`congest_graph::temporal`]) into batches by fixed size or time
//!   window ([`ReplayPolicy`]). Every source names and fingerprints
//!   itself so bench gates refuse cross-source baseline comparisons.
//! * [`WorkloadRunner`] — a load-test harness generic over any
//!   [`BatchSource`]: drives batches at an optional target rate,
//!   flushed by batch count and/or a staleness deadline
//!   ([`WorkloadRunner::flush_deadline`]), summarized as throughput,
//!   latency percentiles, at-flush staleness percentiles and
//!   incremental-vs-recompute speedup ([`RunSummary`], JSON-serializable
//!   with the source's identity embedded).
//!
//! The centralized reference listing
//! ([`congest_graph::triangles::list_all_on`]) is both the seed for
//! [`from_graph`](TriangleIndex::from_graph) and the correctness oracle:
//! the engines' invariant, enforced by property tests at every shard
//! count, is that after **any** sequence of batches the live set equals a
//! from-scratch recount.
//!
//! ```
//! use congest_graph::generators::Gnp;
//! use congest_stream::{
//!     ApplyMode, DeltaBatch, Scenario, ShardedTriangleIndex, TriangleIndex, WorkloadRunner,
//! };
//!
//! // Incremental maintenance…
//! let base = Gnp::new(50, 0.1).seeded(2).generate();
//! let mut index = TriangleIndex::from_graph(&base);
//! let mut batch = DeltaBatch::new();
//! batch.insert(congest_graph::NodeId(0), congest_graph::NodeId(1));
//! index.apply(&batch).unwrap();
//! assert!(index.matches_oracle());
//!
//! // …the same stream through the sharded engine…
//! let mut sharded = ShardedTriangleIndex::from_graph(&base, 4);
//! sharded.apply(&batch).unwrap();
//! assert_eq!(sharded.triangles(), index.triangles());
//!
//! // …and load-testing it.
//! let summary = WorkloadRunner::new(Scenario::uniform_churn(50, 5, 10))
//!     .with_mode(ApplyMode::Deferred)
//!     .with_shards(4)
//!     .verified(true)
//!     .run();
//! assert!(summary.oracle_ok);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
mod delta;
mod distributed;
mod engine;
mod index;
mod pool;
mod runner;
mod serve;
mod shard;
mod sharded;
mod source;
mod workload;

pub use arena::{ArenaStats, NeighborArena};
pub use delta::{DeltaBatch, DeltaOp, EdgeDelta};
pub use distributed::{
    Aggregation, CongestCost, DistributedTriangleEngine, HubSplit, ReceivedBitsSkew, RecoveryStats,
    SimExecutor,
};
// Fault schedules are authored against the simulator's types; re-export
// them so chaos harnesses need only this crate.
pub use congest_sim::{CrashWindow, FaultPlan};
pub use engine::StreamEngine;
pub use index::{ApplyMode, ApplyReport, StreamError, TriangleIndex};
pub use pool::WorkerTelemetry;
pub use runner::{LatencyStats, RecomputeStats, RunSummary, StalenessStats, WorkloadRunner};
pub use serve::{Lease, ServeHandle, TriangleServer, STALE_LEASE_WARN_EPOCHS};
pub use sharded::ShardedTriangleIndex;
pub use source::{split_batch_for_workers, BatchIter, BatchSource, Replay, ReplayPolicy};
pub use workload::{BaseGraph, Scenario, ScenarioBatchIter, ScenarioKind};
