//! The [`StreamEngine`] abstraction: what every incremental triangle
//! engine offers the workload harness.
//!
//! Both engines — the single-threaded [`TriangleIndex`] and the
//! multi-core [`ShardedTriangleIndex`] — maintain adjacency plus the live
//! triangle set under [`DeltaBatch`]es; the
//! [`WorkloadRunner`](crate::WorkloadRunner) drives either through the
//! same scenario via this trait. The [`AdjacencyView`] supertrait is what
//! makes the harness snapshot-free: oracle recounts and the static
//! CONGEST drivers read the engine's live adjacency directly.

use std::time::Duration;

use congest_graph::AdjacencyView;

use crate::arena::ArenaStats;
use crate::delta::DeltaBatch;
use crate::distributed::DistributedTriangleEngine;
use crate::index::{ApplyMode, ApplyReport, StreamError, TriangleIndex};
use crate::pool::WorkerTelemetry;
use crate::sharded::ShardedTriangleIndex;

/// An incremental triangle engine over batched edge deltas.
///
/// Implementations keep the invariant that, once all buffered work is
/// flushed, the live triangle set equals a from-scratch recount on the
/// engine's own [`AdjacencyView`].
pub trait StreamEngine: AdjacencyView {
    /// The application mode in effect.
    fn mode(&self) -> ApplyMode;

    /// Applies (or, in deferred mode, buffers) a batch.
    ///
    /// # Errors
    ///
    /// [`StreamError::NodeOutOfRange`] if any delta references a node
    /// outside the graph; the batch is then applied not at all.
    fn apply(&mut self, batch: &DeltaBatch) -> Result<ApplyReport, StreamError>;

    /// Coalesces and applies everything buffered by deferred mode.
    fn flush(&mut self) -> ApplyReport;

    /// Deltas buffered and not yet flushed.
    fn pending_deltas(&self) -> usize;

    /// Staleness of the oldest buffered delta (`None` while nothing is
    /// pending).
    fn pending_age(&self) -> Option<Duration>;

    /// Number of live triangles (excluding pending deltas).
    fn triangle_count(&self) -> usize;

    /// Whether the live triangle set equals a from-scratch recount on the
    /// engine's own adjacency view.
    fn matches_oracle(&self) -> bool;

    /// Number of shards the engine partitions work across (1 for the
    /// single-threaded index).
    fn shard_count(&self) -> usize;

    /// Lifetime worker-pool telemetry — busy-share balance and steal
    /// counts over every pool-applied batch — for engines backed by a
    /// persistent worker pool. The default is `None`: engines without a
    /// pool (or pool-backed engines whose batches all took the inline or
    /// sequential path) have no worker balance to report.
    fn worker_telemetry(&self) -> Option<WorkerTelemetry> {
        None
    }

    /// Health of the engine's flat neighbour-arena storage (slab bytes,
    /// free-list occupancy, compaction count), for engines that store
    /// adjacency in a [`NeighborArena`](crate::NeighborArena). The
    /// default is `None`: the distributed engine's simulated node
    /// programs keep plain per-node lists and have no arena to report.
    fn arena_stats(&self) -> Option<ArenaStats> {
        None
    }

    /// Number of live triangles containing `node`, for engines that
    /// maintain per-node support counters incrementally (the serve
    /// layer's per-node query). The default is `None`: the distributed
    /// engine's node programs track per-edge candidate state, not a
    /// global support vector.
    fn node_support(&self, node: congest_graph::NodeId) -> Option<usize> {
        let _ = node;
        None
    }
}

impl StreamEngine for TriangleIndex {
    fn mode(&self) -> ApplyMode {
        TriangleIndex::mode(self)
    }

    fn apply(&mut self, batch: &DeltaBatch) -> Result<ApplyReport, StreamError> {
        TriangleIndex::apply(self, batch)
    }

    fn flush(&mut self) -> ApplyReport {
        TriangleIndex::flush(self)
    }

    fn pending_deltas(&self) -> usize {
        TriangleIndex::pending_deltas(self)
    }

    fn pending_age(&self) -> Option<Duration> {
        TriangleIndex::pending_age(self)
    }

    fn triangle_count(&self) -> usize {
        TriangleIndex::triangle_count(self)
    }

    fn matches_oracle(&self) -> bool {
        TriangleIndex::matches_oracle(self)
    }

    fn shard_count(&self) -> usize {
        1
    }

    fn arena_stats(&self) -> Option<ArenaStats> {
        Some(TriangleIndex::arena_stats(self))
    }

    fn node_support(&self, node: congest_graph::NodeId) -> Option<usize> {
        Some(TriangleIndex::node_support(self, node))
    }
}

impl StreamEngine for ShardedTriangleIndex {
    fn mode(&self) -> ApplyMode {
        ShardedTriangleIndex::mode(self)
    }

    fn apply(&mut self, batch: &DeltaBatch) -> Result<ApplyReport, StreamError> {
        ShardedTriangleIndex::apply(self, batch)
    }

    fn flush(&mut self) -> ApplyReport {
        ShardedTriangleIndex::flush(self)
    }

    fn pending_deltas(&self) -> usize {
        ShardedTriangleIndex::pending_deltas(self)
    }

    fn pending_age(&self) -> Option<Duration> {
        ShardedTriangleIndex::pending_age(self)
    }

    fn triangle_count(&self) -> usize {
        ShardedTriangleIndex::triangle_count(self)
    }

    fn matches_oracle(&self) -> bool {
        ShardedTriangleIndex::matches_oracle(self)
    }

    fn shard_count(&self) -> usize {
        ShardedTriangleIndex::shard_count(self)
    }

    fn worker_telemetry(&self) -> Option<WorkerTelemetry> {
        ShardedTriangleIndex::worker_telemetry(self)
    }

    fn arena_stats(&self) -> Option<ArenaStats> {
        Some(ShardedTriangleIndex::arena_stats(self))
    }

    fn node_support(&self, node: congest_graph::NodeId) -> Option<usize> {
        Some(ShardedTriangleIndex::node_support(self, node))
    }
}

impl StreamEngine for DistributedTriangleEngine {
    fn mode(&self) -> ApplyMode {
        DistributedTriangleEngine::mode(self)
    }

    fn apply(&mut self, batch: &DeltaBatch) -> Result<ApplyReport, StreamError> {
        DistributedTriangleEngine::apply(self, batch)
    }

    fn flush(&mut self) -> ApplyReport {
        DistributedTriangleEngine::flush(self)
    }

    fn pending_deltas(&self) -> usize {
        DistributedTriangleEngine::pending_deltas(self)
    }

    fn pending_age(&self) -> Option<Duration> {
        DistributedTriangleEngine::pending_age(self)
    }

    fn triangle_count(&self) -> usize {
        DistributedTriangleEngine::triangle_count(self)
    }

    fn matches_oracle(&self) -> bool {
        DistributedTriangleEngine::matches_oracle(self)
    }

    /// The distributed engine has no shared-memory shards; work is
    /// partitioned across the `n` network nodes instead.
    fn shard_count(&self) -> usize {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_graph::NodeId;

    fn drive<E: StreamEngine>(mut engine: E) -> (usize, bool) {
        let mut batch = DeltaBatch::new();
        batch
            .insert(NodeId(0), NodeId(1))
            .insert(NodeId(1), NodeId(2))
            .insert(NodeId(0), NodeId(2));
        engine.apply(&batch).unwrap();
        engine.flush();
        (engine.triangle_count(), engine.matches_oracle())
    }

    #[test]
    fn all_engines_run_behind_the_trait() {
        assert_eq!(drive(TriangleIndex::new(4)), (1, true));
        assert_eq!(drive(ShardedTriangleIndex::new(4, 2)), (1, true));
        assert_eq!(drive(DistributedTriangleEngine::new(4)), (1, true));
        assert_eq!(StreamEngine::shard_count(&TriangleIndex::new(4)), 1);
        assert_eq!(
            StreamEngine::shard_count(&ShardedTriangleIndex::new(4, 3)),
            3
        );
        assert_eq!(
            StreamEngine::shard_count(&DistributedTriangleEngine::new(4)),
            1
        );
    }
}
