//! Workload scenarios: deterministic generators of edge-delta streams.
//!
//! A [`Scenario`] pairs a base graph (drawn from the existing
//! `congest-graph` generators) with a churn pattern, and expands into a
//! reproducible sequence of [`DeltaBatch`]es — the way a load-test
//! describes the traffic a service will face:
//!
//! * [`ScenarioKind::UniformChurn`] — every delta touches a uniformly
//!   random pair; the steady-state background traffic.
//! * [`ScenarioKind::HotspotChurn`] — endpoints are drawn from a power-law
//!   bias, hammering a few hub nodes the way social graphs do.
//! * [`ScenarioKind::PlantedBurst`] — periodic bursts insert whole
//!   triangles at once, stressing the triangle-add hot path.
//! * [`ScenarioKind::GrowThenShrink`] — a ramp of pure insertions followed
//!   by tearing the same edges back down, ending near the base graph.

use congest_graph::generators::{Gnp, PlantedLight, TriangleFreeBipartite};
use congest_graph::{Graph, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::delta::DeltaBatch;

/// Default seed used when the caller does not provide one.
const DEFAULT_SEED: u64 = 0x57EA_4417_2017_0002;

/// The base graph a scenario starts from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BaseGraph {
    /// No initial edges.
    Empty,
    /// Erdős–Rényi `G(n, p)`.
    Gnp {
        /// Edge probability.
        p: f64,
    },
    /// Sparse graph with planted vertex-disjoint triangles.
    PlantedLight {
        /// Number of planted triangles.
        count: usize,
        /// Background `G(n, p)` overlay probability.
        background_p: f64,
    },
    /// A triangle-free random bipartite graph (sides split evenly).
    TriangleFreeBipartite {
        /// Cross-edge probability.
        p: f64,
    },
}

impl BaseGraph {
    /// Instantiates the base graph on `n` nodes with the given seed.
    pub fn generate(&self, n: usize, seed: u64) -> Graph {
        match *self {
            BaseGraph::Empty => congest_graph::GraphBuilder::new(n).build(),
            BaseGraph::Gnp { p } => Gnp::new(n, p).seeded(seed).generate(),
            BaseGraph::PlantedLight {
                count,
                background_p,
            } => PlantedLight::new(n, count)
                .with_background(background_p)
                .seeded(seed)
                .generate(),
            BaseGraph::TriangleFreeBipartite { p } => {
                TriangleFreeBipartite::new(n / 2, n - n / 2, p)
                    .seeded(seed)
                    .generate()
            }
        }
    }

    /// Short name, used in logs and JSON.
    pub fn name(&self) -> &'static str {
        match self {
            BaseGraph::Empty => "empty",
            BaseGraph::Gnp { .. } => "gnp",
            BaseGraph::PlantedLight { .. } => "planted_light",
            BaseGraph::TriangleFreeBipartite { .. } => "bipartite",
        }
    }
}

/// The churn pattern of a scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScenarioKind {
    /// Uniformly random insert/remove pairs (50/50).
    UniformChurn,
    /// Power-law-biased endpoints: node `⌊n · x^exponent⌋` for uniform
    /// `x`, so small ids become hubs. `exponent > 1`; larger is hotter.
    HotspotChurn {
        /// Skew exponent (3.0 is a reasonable "social graph" default).
        exponent: f64,
    },
    /// Uniform churn plus, every `burst_every` batches, a burst inserting
    /// `triangles_per_burst` complete triangles.
    PlantedBurst {
        /// Batch period of bursts (1 = every batch).
        burst_every: usize,
        /// Number of triangles planted per burst.
        triangles_per_burst: usize,
    },
    /// First half of the stream inserts fresh random edges, second half
    /// removes them in reverse order.
    GrowThenShrink,
}

impl ScenarioKind {
    /// Short snake-case name, used in logs and JSON.
    pub fn name(&self) -> &'static str {
        match self {
            ScenarioKind::UniformChurn => "uniform_churn",
            ScenarioKind::HotspotChurn { .. } => "hotspot_churn",
            ScenarioKind::PlantedBurst { .. } => "planted_burst",
            ScenarioKind::GrowThenShrink => "grow_then_shrink",
        }
    }
}

/// A reproducible update-stream workload.
///
/// ```
/// use congest_stream::{BaseGraph, Scenario};
///
/// let scenario = Scenario::uniform_churn(100, 20, 50)
///     .with_base(BaseGraph::Gnp { p: 0.05 })
///     .seeded(7);
/// let batches = scenario.batches();
/// assert_eq!(batches.len(), 20);
/// assert!(batches.iter().all(|b| b.len() == 50));
/// // Deterministic per seed:
/// assert_eq!(batches, scenario.batches());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    kind: ScenarioKind,
    base: BaseGraph,
    n: usize,
    batch_count: usize,
    batch_size: usize,
    seed: u64,
}

impl Scenario {
    /// A scenario with an explicit churn pattern.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` (no pair to mutate) or `batch_size == 0`.
    pub fn new(kind: ScenarioKind, n: usize, batch_count: usize, batch_size: usize) -> Self {
        assert!(n >= 2, "need at least 2 nodes to form edges, got {n}");
        assert!(batch_size > 0, "batch_size must be positive");
        Scenario {
            kind,
            base: BaseGraph::Empty,
            n,
            batch_count,
            batch_size,
            seed: DEFAULT_SEED,
        }
    }

    /// Uniform churn on `n` nodes.
    pub fn uniform_churn(n: usize, batch_count: usize, batch_size: usize) -> Self {
        Self::new(ScenarioKind::UniformChurn, n, batch_count, batch_size)
    }

    /// Hotspot (power-law) churn with exponent 3.0.
    pub fn hotspot_churn(n: usize, batch_count: usize, batch_size: usize) -> Self {
        Self::new(
            ScenarioKind::HotspotChurn { exponent: 3.0 },
            n,
            batch_count,
            batch_size,
        )
    }

    /// Uniform churn with a triangle burst every 4 batches.
    pub fn planted_bursts(n: usize, batch_count: usize, batch_size: usize) -> Self {
        Self::new(
            ScenarioKind::PlantedBurst {
                burst_every: 4,
                triangles_per_burst: 8,
            },
            n,
            batch_count,
            batch_size,
        )
    }

    /// Grow-then-shrink ramp on `n` nodes.
    pub fn grow_then_shrink(n: usize, batch_count: usize, batch_size: usize) -> Self {
        Self::new(ScenarioKind::GrowThenShrink, n, batch_count, batch_size)
    }

    /// Sets the base graph (builder style).
    pub fn with_base(mut self, base: BaseGraph) -> Self {
        self.base = base;
        self
    }

    /// Sets the random seed (builder style).
    pub fn seeded(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The churn pattern.
    pub fn kind(&self) -> ScenarioKind {
        self.kind
    }

    /// The base-graph family.
    pub fn base(&self) -> BaseGraph {
        self.base
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Number of batches the stream expands to.
    pub fn batch_count(&self) -> usize {
        self.batch_count
    }

    /// Deltas per batch (bursts may exceed this by the burst size).
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// The seed the stream and base graph derive from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The scenario's name, `kind/base`.
    pub fn name(&self) -> String {
        format!("{}/{}", self.kind.name(), self.base.name())
    }

    /// Instantiates the base graph.
    pub fn base_graph(&self) -> Graph {
        // Offset the seed so the base graph and the churn stream are
        // decorrelated but both derived from the scenario seed.
        self.base.generate(self.n, self.seed ^ 0xB45E)
    }

    /// Expands the scenario into its deterministic batch stream.
    ///
    /// Materializes every batch; for large streams prefer
    /// [`Scenario::batch_iter`], which generates lazily and is
    /// bit-identical batch for batch.
    pub fn batches(&self) -> Vec<DeltaBatch> {
        self.batch_iter().collect()
    }

    /// A lazy, deterministic iterator over the scenario's batches.
    ///
    /// Yields exactly [`Scenario::batch_count`] batches, identical to the
    /// elements of [`Scenario::batches`] — the RNG is threaded through
    /// the iterator state, so generating batch `i` requires generating
    /// `0..i` first (there is no random access).
    pub fn batch_iter(&self) -> ScenarioBatchIter<'_> {
        ScenarioBatchIter {
            scenario: self,
            rng: StdRng::seed_from_u64(self.seed),
            grown: Vec::new(),
            next_index: 0,
        }
    }

    /// Generates batch `batch_index`, advancing `rng` and the
    /// grow-then-shrink `grown` stack exactly as the historical
    /// monolithic loop did.
    fn generate_batch(
        &self,
        batch_index: usize,
        rng: &mut StdRng,
        grown: &mut Vec<(NodeId, NodeId)>,
    ) -> DeltaBatch {
        let grow_batches = self.batch_count.div_ceil(2);
        let mut batch = DeltaBatch::new();
        match self.kind {
            ScenarioKind::UniformChurn => {
                for _ in 0..self.batch_size {
                    let (u, v) = self.uniform_pair(rng);
                    if rng.gen_bool(0.5) {
                        batch.insert(u, v);
                    } else {
                        batch.remove(u, v);
                    }
                }
            }
            ScenarioKind::HotspotChurn { exponent } => {
                for _ in 0..self.batch_size {
                    let (u, v) = self.hotspot_pair(rng, exponent);
                    if rng.gen_bool(0.5) {
                        batch.insert(u, v);
                    } else {
                        batch.remove(u, v);
                    }
                }
            }
            ScenarioKind::PlantedBurst {
                burst_every,
                triangles_per_burst,
            } => {
                for _ in 0..self.batch_size {
                    let (u, v) = self.uniform_pair(rng);
                    if rng.gen_bool(0.5) {
                        batch.insert(u, v);
                    } else {
                        batch.remove(u, v);
                    }
                }
                // Bursts need three distinct nodes; on degenerate
                // two-node graphs the scenario degrades to plain churn.
                if burst_every > 0 && batch_index.is_multiple_of(burst_every) && self.n >= 3 {
                    for _ in 0..triangles_per_burst {
                        let [a, b, c] = self.uniform_triple(rng);
                        batch.insert(a, b).insert(b, c).insert(a, c);
                    }
                }
            }
            ScenarioKind::GrowThenShrink => {
                if batch_index < grow_batches {
                    for _ in 0..self.batch_size {
                        let (u, v) = self.uniform_pair(rng);
                        grown.push((u, v));
                        batch.insert(u, v);
                    }
                } else {
                    for _ in 0..self.batch_size {
                        let (u, v) = match grown.pop() {
                            Some(pair) => pair,
                            None => self.uniform_pair(rng),
                        };
                        batch.remove(u, v);
                    }
                }
            }
        }
        batch
    }

    /// Total number of deltas across the expanded stream.
    pub fn total_deltas(&self) -> usize {
        self.batch_iter().map(|b| b.len()).sum()
    }

    fn uniform_pair(&self, rng: &mut StdRng) -> (NodeId, NodeId) {
        let u = rng.gen_range(0..self.n);
        let mut v = rng.gen_range(0..self.n);
        while v == u {
            v = rng.gen_range(0..self.n);
        }
        (NodeId::from_index(u), NodeId::from_index(v))
    }

    /// Three distinct uniform nodes; callers must ensure `n >= 3` or the
    /// rejection loop cannot terminate.
    fn uniform_triple(&self, rng: &mut StdRng) -> [NodeId; 3] {
        assert!(self.n >= 3, "triples need at least 3 nodes");
        let a = rng.gen_range(0..self.n);
        let mut b = rng.gen_range(0..self.n);
        while b == a {
            b = rng.gen_range(0..self.n);
        }
        let mut c = rng.gen_range(0..self.n);
        while c == a || c == b {
            c = rng.gen_range(0..self.n);
        }
        [
            NodeId::from_index(a),
            NodeId::from_index(b),
            NodeId::from_index(c),
        ]
    }

    fn hotspot_pair(&self, rng: &mut StdRng, exponent: f64) -> (NodeId, NodeId) {
        let u = self.hotspot_node(rng, exponent);
        let mut v = self.hotspot_node(rng, exponent);
        let mut attempts = 0;
        while v == u {
            // Keep the bias, but guarantee termination on tiny graphs.
            v = if attempts < 8 {
                self.hotspot_node(rng, exponent)
            } else {
                rng.gen_range(0..self.n)
            };
            attempts += 1;
        }
        (NodeId::from_index(u), NodeId::from_index(v))
    }

    fn hotspot_node(&self, rng: &mut StdRng, exponent: f64) -> usize {
        let x: f64 = rng.gen_range(0.0..1.0);
        ((self.n as f64) * x.powf(exponent)) as usize % self.n
    }
}

/// Lazy iterator over a [`Scenario`]'s deterministic batch stream.
///
/// Created by [`Scenario::batch_iter`]. Carries the churn RNG and the
/// grow-then-shrink stack, so each batch is produced on demand without
/// materializing the whole stream.
#[derive(Debug, Clone)]
pub struct ScenarioBatchIter<'a> {
    scenario: &'a Scenario,
    rng: StdRng,
    grown: Vec<(NodeId, NodeId)>,
    next_index: usize,
}

impl Iterator for ScenarioBatchIter<'_> {
    type Item = DeltaBatch;

    fn next(&mut self) -> Option<DeltaBatch> {
        if self.next_index >= self.scenario.batch_count {
            return None;
        }
        let batch = self
            .scenario
            .generate_batch(self.next_index, &mut self.rng, &mut self.grown);
        self.next_index += 1;
        Some(batch)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.scenario.batch_count - self.next_index;
        (left, Some(left))
    }
}

impl ExactSizeIterator for ScenarioBatchIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delta::DeltaOp;

    #[test]
    fn streams_are_deterministic_per_seed() {
        let s = Scenario::uniform_churn(50, 10, 20).seeded(3);
        assert_eq!(s.batches(), s.batches());
        let other = Scenario::uniform_churn(50, 10, 20).seeded(4);
        assert_ne!(s.batches(), other.batches());
    }

    #[test]
    fn batch_shape_matches_the_request() {
        let s = Scenario::uniform_churn(20, 7, 13);
        let batches = s.batches();
        assert_eq!(batches.len(), 7);
        assert!(batches.iter().all(|b| b.len() == 13));
        assert_eq!(s.total_deltas(), 7 * 13);
    }

    #[test]
    fn hotspot_churn_is_actually_skewed() {
        let s = Scenario::hotspot_churn(100, 20, 50).seeded(5);
        let mut touches = vec![0usize; 100];
        for b in s.batches() {
            for d in &b {
                touches[d.edge.lo().index()] += 1;
                touches[d.edge.hi().index()] += 1;
            }
        }
        let low: usize = touches[..10].iter().sum();
        let high: usize = touches[90..].iter().sum();
        assert!(
            low > 5 * high.max(1),
            "expected hub bias toward small ids, got low={low} high={high}"
        );
    }

    #[test]
    fn planted_bursts_inject_triangles_periodically() {
        let s = Scenario::planted_bursts(60, 8, 10).seeded(6);
        let batches = s.batches();
        // Burst every 4 batches: batches 0 and 4 carry 8 * 3 extra inserts.
        assert_eq!(batches[0].len(), 10 + 24);
        assert_eq!(batches[1].len(), 10);
        assert_eq!(batches[4].len(), 10 + 24);
    }

    #[test]
    fn grow_then_shrink_removes_what_it_grew() {
        let s = Scenario::grow_then_shrink(30, 10, 6).seeded(7);
        let batches = s.batches();
        for b in &batches[..5] {
            assert!(b.deltas().iter().all(|d| d.op == DeltaOp::Insert));
        }
        for b in &batches[5..] {
            assert!(b.deltas().iter().all(|d| d.op == DeltaOp::Remove));
        }
        // The shrink phase removes exactly the grown edges (reverse order).
        let grown: Vec<_> = batches[..5]
            .iter()
            .flat_map(|b| b.deltas().iter().map(|d| d.edge))
            .collect();
        let removed: Vec<_> = batches[5..]
            .iter()
            .flat_map(|b| b.deltas().iter().map(|d| d.edge))
            .collect();
        let mut reversed = grown.clone();
        reversed.reverse();
        assert_eq!(removed, reversed);
    }

    #[test]
    fn planted_bursts_degrade_to_churn_on_two_node_graphs() {
        let s = Scenario::new(
            ScenarioKind::PlantedBurst {
                burst_every: 1,
                triangles_per_burst: 1,
            },
            2,
            3,
            4,
        );
        // Must terminate (no triple exists on 2 nodes) and stay churn-only.
        let batches = s.batches();
        assert!(batches.iter().all(|b| b.len() == 4));
    }

    #[test]
    fn base_graphs_come_from_the_graph_generators() {
        let gnp = Scenario::uniform_churn(40, 1, 1)
            .with_base(BaseGraph::Gnp { p: 0.2 })
            .seeded(8);
        assert!(gnp.base_graph().edge_count() > 0);

        let planted = Scenario::uniform_churn(40, 1, 1).with_base(BaseGraph::PlantedLight {
            count: 5,
            background_p: 0.0,
        });
        assert_eq!(
            congest_graph::triangles::count_all(&planted.base_graph()),
            5
        );

        let bip = Scenario::uniform_churn(40, 1, 1)
            .with_base(BaseGraph::TriangleFreeBipartite { p: 0.3 });
        assert_eq!(congest_graph::triangles::count_all(&bip.base_graph()), 0);

        let empty = Scenario::uniform_churn(40, 1, 1);
        assert_eq!(empty.base_graph().edge_count(), 0);
        assert_eq!(empty.base().name(), "empty");
    }

    #[test]
    fn names_compose_kind_and_base() {
        let s = Scenario::hotspot_churn(10, 1, 1).with_base(BaseGraph::Gnp { p: 0.1 });
        assert_eq!(s.name(), "hotspot_churn/gnp");
        assert_eq!(s.kind().name(), "hotspot_churn");
        assert_eq!(s.node_count(), 10);
        assert_eq!(s.batch_count(), 1);
        assert_eq!(s.batch_size(), 1);
    }

    #[test]
    #[should_panic(expected = "at least 2 nodes")]
    fn rejects_degenerate_node_counts() {
        let _ = Scenario::uniform_churn(1, 1, 1);
    }

    #[test]
    fn batch_iter_matches_materialized_batches() {
        for s in [
            Scenario::uniform_churn(30, 6, 9).seeded(11),
            Scenario::hotspot_churn(30, 6, 9).seeded(12),
            Scenario::planted_bursts(30, 6, 9).seeded(13),
            Scenario::grow_then_shrink(30, 6, 9).seeded(14),
        ] {
            let iter = s.batch_iter();
            assert_eq!(iter.len(), 6);
            let streamed: Vec<_> = iter.collect();
            assert_eq!(streamed, s.batches(), "{}", s.name());
        }
    }
}
