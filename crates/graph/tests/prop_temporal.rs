//! Property tests for the temporal edge-list pipeline: the loader must
//! never panic on arbitrary text, errors must carry the offending line
//! number and leave nothing half-applied, and the synthetic writer must
//! round-trip byte-stably through the loader for every seed.

use std::path::PathBuf;

use congest_graph::temporal::{SyntheticTemporal, TemporalLoader};
use congest_graph::GraphError;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A fresh path under the cargo-managed integration-test temp dir.
fn tmp_path(name: &str, seed: u64) -> PathBuf {
    PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(format!("{name}-{seed:x}.tel"))
}

/// Deterministic garbage: lines mixing valid records, near-miss records
/// (bad field counts, non-numeric tokens, negative times), comments and
/// junk bytes — the space a messy real-world export lives in.
fn garbage_text(seed: u64) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = String::new();
    let lines = rng.gen_range(0usize..40);
    for _ in 0..lines {
        match rng.gen_range(0u32..8) {
            0 => out.push_str(&format!(
                "{} {} {}\n",
                rng.gen_range(0u32..50),
                rng.gen_range(0u32..50),
                rng.gen_range(0u64..1000),
            )),
            1 => out.push_str(&format!(
                "{} {} {} {}\n",
                rng.gen_range(0u32..50),
                rng.gen_range(0u32..50),
                rng.gen_range(-3i64..3),
                rng.gen_range(0u64..1000),
            )),
            2 => out.push_str("# comment line\n"),
            3 => out.push('\n'),
            4 => out.push_str(&format!("{}\n", rng.gen_range(0u32..100))),
            5 => out.push_str("one two three\n"),
            6 => out.push_str(&format!(
                "{} {} -{}\n",
                rng.gen_range(0u32..50),
                rng.gen_range(0u32..50),
                rng.gen_range(1u64..9),
            )),
            _ => {
                for _ in 0..rng.gen_range(1usize..12) {
                    out.push((32 + rng.gen_range(0u8..94)) as char);
                }
                out.push('\n');
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Arbitrary text never panics the loader; failures are
    /// line-numbered within the file and successes keep every invariant
    /// the replay driver relies on (sorted times, normalized endpoints,
    /// in-range ids).
    #[test]
    fn garbage_never_panics_and_errors_point_at_a_line(seed in any::<u64>()) {
        let text = garbage_text(seed);
        let line_count = text.lines().count();
        match TemporalLoader::new().parse_str(&text) {
            Ok(list) => {
                prop_assert!(list.events().windows(2).all(|p| p[0].time <= p[1].time));
                for e in list.events() {
                    prop_assert!(e.u < e.v, "endpoints not normalized: {e:?}");
                    prop_assert!(e.v.index() < list.node_count());
                }
            }
            Err(GraphError::ParseEdgeList { line, reason }) => {
                prop_assert!(line >= 1 && line <= line_count,
                    "line {line} outside 1..={line_count}: {reason}");
                prop_assert!(!reason.is_empty());
            }
            Err(other) => prop_assert!(false, "unexpected error kind: {other:?}"),
        }
    }

    /// One malformed line poisons the whole load — the error names
    /// exactly that line and no partial timeline escapes. The same text
    /// without the bad line parses clean, so the rejection is precise,
    /// not a side effect of surrounding records.
    #[test]
    fn a_single_bad_line_fails_the_load_with_its_number(
        seed in any::<u64>(),
        at in 0usize..60,
    ) {
        let text = SyntheticTemporal::new(20, 60).seeded(seed).render();
        let mut lines: Vec<&str> = text.lines().collect();
        let at = at.min(lines.len());
        lines.insert(at, "3 4 not_a_time");
        let poisoned = lines.join("\n");
        match TemporalLoader::new().parse_str(&poisoned) {
            Err(GraphError::ParseEdgeList { line, reason }) => {
                prop_assert_eq!(line, at + 1);
                prop_assert!(reason.contains("not_a_time"), "{}", reason);
            }
            other => prop_assert!(false, "expected a parse error, got {other:?}"),
        }
        prop_assert!(TemporalLoader::new().parse_str(&text).is_ok());
    }

    /// Truncating a file mid-byte either still parses (the cut landed on
    /// a record boundary, or left a shorter-but-valid record) or fails
    /// on the final line — never a panic, never an error blamed on an
    /// intact line.
    #[test]
    fn truncated_files_fail_cleanly_or_parse_a_prefix(
        seed in any::<u64>(),
        cut_back in 1usize..40,
    ) {
        let text = SyntheticTemporal::new(16, 40).seeded(seed).render();
        let cut = text.len().saturating_sub(cut_back);
        let truncated = &text[..cut];
        let full = TemporalLoader::new().parse_str(&text).unwrap();
        match TemporalLoader::new().parse_str(truncated) {
            Ok(list) => prop_assert!(list.len() <= full.len()),
            Err(GraphError::ParseEdgeList { line, .. }) => {
                prop_assert_eq!(line, truncated.lines().count());
            }
            Err(other) => prop_assert!(false, "unexpected error kind: {other:?}"),
        }
    }

    /// Replaying a file concatenated with itself drops every repeated
    /// event as a duplicate and yields the *identical* timeline — same
    /// fingerprint, same length — so accidental double-ingestion cannot
    /// silently double-bill the engines.
    #[test]
    fn self_concatenation_is_fully_deduplicated(seed in any::<u64>()) {
        let text = SyntheticTemporal::new(12, 50).seeded(seed).render();
        let once = TemporalLoader::new().parse_str(&text).unwrap();
        let twice = TemporalLoader::new()
            .parse_str(&format!("{text}{text}"))
            .unwrap();
        prop_assert_eq!(twice.duplicates_dropped(), once.len());
        prop_assert_eq!(twice.len(), once.len());
        prop_assert_eq!(twice.fingerprint(), once.fingerprint());
    }

    /// Writer → disk → loader is byte-stable and identity-preserving:
    /// the same seed always produces the same file and fingerprint,
    /// distinct seeds produce distinct bytes (the seed is in the
    /// header), and `load_path` agrees exactly with `parse_str`.
    #[test]
    fn writer_disk_loader_round_trip_is_stable(seed in any::<u64>()) {
        let writer = SyntheticTemporal::new(25, 80).seeded(seed);
        let text = writer.render();
        prop_assert_eq!(&text, &writer.render());
        prop_assert!(text != SyntheticTemporal::new(25, 80).seeded(seed ^ 1).render());

        let path = tmp_path("roundtrip", seed);
        writer.write_to(&path).unwrap();
        let from_disk = TemporalLoader::new().load_path(&path).unwrap();
        let from_str = TemporalLoader::new().parse_str(&text).unwrap();
        std::fs::remove_file(&path).ok();
        prop_assert_eq!(from_disk.fingerprint(), from_str.fingerprint());
        prop_assert_eq!(from_disk.len(), 80);
        prop_assert_eq!(from_disk.events(), from_str.events());
    }
}

/// An unreadable path is a typed I/O error naming the path — not a
/// panic, not an empty timeline.
#[test]
fn unreadable_path_is_a_typed_io_error() {
    let path = tmp_path("missing-dir", 0).join("nope.tel");
    match TemporalLoader::new().load_path(&path) {
        Err(GraphError::Io { path: p, detail }) => {
            assert!(p.contains("nope.tel"), "{p}");
            assert!(!detail.is_empty());
        }
        other => panic!("expected GraphError::Io, got {other:?}"),
    }
}
