//! Error type of the graph substrate.

use std::error::Error;
use std::fmt;

use crate::NodeId;

/// Errors produced while building or querying graphs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A node identifier is outside `0..n`.
    NodeOutOfRange {
        /// The offending node.
        node: NodeId,
        /// The number of nodes of the graph.
        node_count: usize,
    },
    /// A self-loop was supplied; the model only considers simple graphs.
    SelfLoop {
        /// The node with the attempted self-loop.
        node: NodeId,
    },
    /// An edge-list entry could not be parsed.
    ParseEdgeList {
        /// 1-based line number of the offending line.
        line: usize,
        /// Explanation of the failure.
        reason: String,
    },
    /// Reading or writing an edge-list file failed. The OS error is
    /// carried as text so the error type stays `Clone + Eq` (callers
    /// compare and replay errors in property tests).
    Io {
        /// Path of the file involved.
        path: String,
        /// The underlying I/O failure, rendered.
        detail: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, node_count } => {
                write!(f, "node {node} is outside the graph of {node_count} nodes")
            }
            GraphError::SelfLoop { node } => {
                write!(
                    f,
                    "self-loop at node {node} is not allowed in a simple graph"
                )
            }
            GraphError::ParseEdgeList { line, reason } => {
                write!(f, "failed to parse edge list at line {line}: {reason}")
            }
            GraphError::Io { path, detail } => {
                write!(f, "I/O error on {path}: {detail}")
            }
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_the_problem() {
        let e = GraphError::NodeOutOfRange {
            node: NodeId(9),
            node_count: 5,
        };
        assert!(e.to_string().contains("outside the graph"));
        let e = GraphError::SelfLoop { node: NodeId(2) };
        assert!(e.to_string().contains("self-loop"));
        let e = GraphError::ParseEdgeList {
            line: 3,
            reason: "not a number".into(),
        };
        assert!(e.to_string().contains("line 3"));
        let e = GraphError::Io {
            path: "edges.txt".into(),
            detail: "permission denied".into(),
        };
        assert!(e.to_string().contains("edges.txt"));
        assert!(e.to_string().contains("permission denied"));
    }

    #[test]
    fn is_send_sync_error() {
        fn assert_error<E: std::error::Error + Send + Sync + 'static>() {}
        assert_error::<GraphError>();
    }
}
