//! Incremental graph construction.

use crate::{Graph, GraphError, NodeId};

/// Incremental builder for [`Graph`].
///
/// The builder validates every edge (both endpoints in range, no
/// self-loops) and silently ignores duplicate insertions, so generators can
/// be written without tracking what they already added.
///
/// ```
/// use congest_graph::{GraphBuilder, NodeId};
///
/// # fn main() -> Result<(), congest_graph::GraphError> {
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(NodeId(0), NodeId(1))?;
/// b.add_edge(NodeId(1), NodeId(2))?;
/// let g = b.build();
/// assert_eq!(g.edge_count(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    adjacency: Vec<Vec<NodeId>>,
}

impl GraphBuilder {
    /// Creates a builder for a graph on `node_count` nodes and no edges.
    pub fn new(node_count: usize) -> Self {
        GraphBuilder {
            adjacency: vec![Vec::new(); node_count],
        }
    }

    /// Number of nodes of the graph under construction.
    pub fn node_count(&self) -> usize {
        self.adjacency.len()
    }

    /// Adds the undirected edge `{a, b}`.
    ///
    /// Adding an edge that is already present is a no-op.
    ///
    /// # Errors
    ///
    /// * [`GraphError::NodeOutOfRange`] if an endpoint is `>= node_count`.
    /// * [`GraphError::SelfLoop`] if `a == b`.
    pub fn add_edge(&mut self, a: NodeId, b: NodeId) -> Result<(), GraphError> {
        let n = self.node_count();
        if a.index() >= n {
            return Err(GraphError::NodeOutOfRange {
                node: a,
                node_count: n,
            });
        }
        if b.index() >= n {
            return Err(GraphError::NodeOutOfRange {
                node: b,
                node_count: n,
            });
        }
        if a == b {
            return Err(GraphError::SelfLoop { node: a });
        }
        self.adjacency[a.index()].push(b);
        self.adjacency[b.index()].push(a);
        Ok(())
    }

    /// Adds every edge of an iterator of `(usize, usize)` pairs.
    ///
    /// # Errors
    ///
    /// Propagates the first validation error; edges added before the error
    /// remain in the builder.
    pub fn add_edges<I>(&mut self, edges: I) -> Result<(), GraphError>
    where
        I: IntoIterator<Item = (usize, usize)>,
    {
        for (a, b) in edges {
            self.add_edge(NodeId::from_index(a), NodeId::from_index(b))?;
        }
        Ok(())
    }

    /// Finalizes the builder into an immutable [`Graph`], sorting and
    /// deduplicating adjacency lists.
    pub fn build(self) -> Graph {
        Graph::from_adjacency(self.adjacency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_out_of_range_nodes() {
        let mut b = GraphBuilder::new(2);
        let err = b.add_edge(NodeId(0), NodeId(2)).unwrap_err();
        assert_eq!(
            err,
            GraphError::NodeOutOfRange {
                node: NodeId(2),
                node_count: 2
            }
        );
        let err = b.add_edge(NodeId(5), NodeId(0)).unwrap_err();
        assert!(matches!(err, GraphError::NodeOutOfRange { .. }));
    }

    #[test]
    fn rejects_self_loops() {
        let mut b = GraphBuilder::new(2);
        let err = b.add_edge(NodeId(1), NodeId(1)).unwrap_err();
        assert_eq!(err, GraphError::SelfLoop { node: NodeId(1) });
    }

    #[test]
    fn add_edges_bulk() {
        let mut b = GraphBuilder::new(4);
        b.add_edges([(0, 1), (1, 2), (2, 3)]).unwrap();
        let g = b.build();
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn add_edges_propagates_errors() {
        let mut b = GraphBuilder::new(3);
        assert!(b.add_edges([(0, 1), (1, 7)]).is_err());
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new(0).build();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.max_degree(), 0);
    }
}
