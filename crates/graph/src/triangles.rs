//! Centralized reference triangle algorithms.
//!
//! These provide the ground truth against which the distributed algorithms
//! are checked: `T(G)` (the set of all triangles), the triangle count, the
//! per-edge support `#(e)`, and the triangles incident to a given node.
//!
//! The listing routine is the standard degree-ordered adjacency
//! intersection: orient each edge from the endpoint with lower
//! (degree, id) towards the higher one and intersect out-neighbourhoods.
//! Its running time is `O(m^{3/2})`, fast enough for every graph size the
//! simulator can handle.
//!
//! Every routine is generic over [`AdjacencyView`], so the same oracle
//! runs on a frozen [`Graph`] and directly on the live indexes of
//! `congest-stream` — no snapshot rebuild. The historical `&Graph` entry
//! points are kept as thin aliases.

use crate::{AdjacencyView, Edge, Graph, NodeId, Triangle, TriangleSet};

/// Rank used for the degree ordering: nodes are compared by
/// `(degree, id)` so the orientation is acyclic and unique.
fn rank<V: AdjacencyView + ?Sized>(g: &V, v: NodeId) -> (usize, NodeId) {
    (g.degree(v), v)
}

/// Lists all triangles of `g` (the set `T(G)` of the paper).
///
/// ```
/// use congest_graph::generators::Classic;
/// use congest_graph::triangles::list_all;
///
/// let k4 = Classic::Complete(4).generate();
/// assert_eq!(list_all(&k4).len(), 4);
/// ```
pub fn list_all(g: &Graph) -> TriangleSet {
    list_all_on(g)
}

/// Lists all triangles of any [`AdjacencyView`] — the snapshot-free oracle
/// used by the streaming engines' self-checks.
pub fn list_all_on<V: AdjacencyView + ?Sized>(g: &V) -> TriangleSet {
    let mut out = TriangleSet::new();
    // Out-neighbours under the degree ordering, kept sorted by id.
    let mut forward: Vec<Vec<NodeId>> = vec![Vec::new(); g.node_count()];
    for v in g.nodes() {
        for &w in g.neighbors(v) {
            if rank(g, v) < rank(g, w) {
                forward[v.index()].push(w);
            }
        }
        forward[v.index()].sort_unstable();
    }
    for v in g.nodes() {
        let fv = &forward[v.index()];
        for &u in fv.iter() {
            let fu = &forward[u.index()];
            // Intersect fv with fu; both are sorted by id. The triangle
            // {v, u, w} is reported exactly once, for the ordered pair
            // (v, u) with rank(v) < rank(u) < rank(w).
            let mut a = 0usize;
            let mut b = 0usize;
            while a < fv.len() && b < fu.len() {
                match fv[a].cmp(&fu[b]) {
                    std::cmp::Ordering::Less => a += 1,
                    std::cmp::Ordering::Greater => b += 1,
                    std::cmp::Ordering::Equal => {
                        out.insert(Triangle::new(v, u, fv[a]));
                        a += 1;
                        b += 1;
                    }
                }
            }
        }
    }
    out
}

/// Counts the triangles of `g` without materializing them.
pub fn count_all(g: &Graph) -> usize {
    list_all(g).len()
}

/// Counts the triangles of any [`AdjacencyView`].
pub fn count_all_on<V: AdjacencyView + ?Sized>(g: &V) -> usize {
    list_all_on(g).len()
}

/// Whether `g` contains at least one triangle.
pub fn has_triangle(g: &Graph) -> bool {
    has_triangle_on(g)
}

/// Whether any [`AdjacencyView`] contains at least one triangle.
pub fn has_triangle_on<V: AdjacencyView + ?Sized>(g: &V) -> bool {
    // Early-exit variant of the listing loop.
    for v in g.nodes() {
        for &u in g.neighbors(v) {
            if u <= v {
                continue;
            }
            if g.edge_support(v, u) > 0 {
                return true;
            }
        }
    }
    false
}

/// Lists the triangles containing a specific node (the local-listing output
/// of Proposition 5).
pub fn list_containing(g: &Graph, node: NodeId) -> TriangleSet {
    let mut out = TriangleSet::new();
    let neighbors = g.neighbors(node);
    for (i, &u) in neighbors.iter().enumerate() {
        for &w in &neighbors[i + 1..] {
            if g.has_edge(u, w) {
                out.insert(Triangle::new(node, u, w));
            }
        }
    }
    out
}

/// Lists the triangles containing a specific edge.
pub fn list_containing_edge(g: &Graph, edge: Edge) -> TriangleSet {
    g.common_neighbors(edge.lo(), edge.hi())
        .into_iter()
        .map(|w| Triangle::new(edge.lo(), edge.hi(), w))
        .collect()
}

/// Brute-force `O(n^3)` listing, used only by tests as an independent
/// oracle for the optimized routine.
pub fn list_all_brute_force(g: &Graph) -> TriangleSet {
    let mut out = TriangleSet::new();
    let n = g.node_count();
    for a in 0..n {
        for b in (a + 1)..n {
            if !g.has_edge(NodeId::from_index(a), NodeId::from_index(b)) {
                continue;
            }
            for c in (b + 1)..n {
                let (va, vb, vc) = (
                    NodeId::from_index(a),
                    NodeId::from_index(b),
                    NodeId::from_index(c),
                );
                if g.has_edge(va, vc) && g.has_edge(vb, vc) {
                    out.insert(Triangle::new(va, vb, vc));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{Classic, Gnp, PlantedLight};

    #[test]
    fn complete_graph_counts() {
        // K_n has C(n,3) triangles.
        for n in 3..8 {
            let g = Classic::Complete(n).generate();
            let expected = n * (n - 1) * (n - 2) / 6;
            assert_eq!(count_all(&g), expected);
            assert!(has_triangle(&g));
        }
    }

    #[test]
    fn triangle_free_graphs() {
        let g = Classic::CompleteBipartite(6, 7).generate();
        assert_eq!(count_all(&g), 0);
        assert!(!has_triangle(&g));
        let g = Classic::Cycle(8).generate();
        assert!(!has_triangle(&g));
        let g = Classic::Cycle(3).generate();
        assert!(has_triangle(&g));
    }

    #[test]
    fn view_oracle_matches_graph_oracle() {
        /// Plain sorted-`Vec` adjacency, as the streaming engines keep it.
        struct Lists(Vec<Vec<NodeId>>);
        impl AdjacencyView for Lists {
            fn node_count(&self) -> usize {
                self.0.len()
            }
            fn neighbors(&self, node: NodeId) -> &[NodeId] {
                &self.0[node.index()]
            }
        }
        for seed in 0..3 {
            let g = Gnp::new(30, 0.25).seeded(seed).generate();
            let lists = Lists(g.nodes().map(|u| g.neighbors(u).to_vec()).collect());
            assert_eq!(list_all_on(&lists), list_all(&g), "seed {seed}");
            assert_eq!(count_all_on(&lists), count_all(&g));
            assert_eq!(has_triangle_on(&lists), has_triangle(&g));
        }
    }

    #[test]
    fn matches_brute_force_on_random_graphs() {
        for seed in 0..5 {
            let g = Gnp::new(25, 0.3).seeded(seed).generate();
            assert_eq!(list_all(&g), list_all_brute_force(&g), "seed {seed}");
        }
    }

    #[test]
    fn listing_output_only_contains_real_triangles() {
        let g = Gnp::new(40, 0.2).seeded(3).generate();
        for t in &list_all(&g) {
            assert!(g.is_triangle(*t));
        }
    }

    #[test]
    fn per_node_listing_is_consistent_with_global_listing() {
        let g = Gnp::new(30, 0.3).seeded(7).generate();
        let all = list_all(&g);
        for v in g.nodes() {
            let local = list_containing(&g, v);
            // Every local triangle is a global triangle containing v...
            for t in &local {
                assert!(all.contains(t));
                assert!(t.contains(v));
            }
            // ...and vice versa.
            assert_eq!(all.containing(v).count(), local.len());
        }
    }

    #[test]
    fn per_edge_listing_matches_edge_support() {
        let g = Gnp::new(30, 0.4).seeded(5).generate();
        for e in g.edges() {
            let through = list_containing_edge(&g, e);
            assert_eq!(through.len(), g.edge_support(e.lo(), e.hi()));
            for t in &through {
                assert!(t.contains_edge(e));
                assert!(g.is_triangle(*t));
            }
        }
    }

    #[test]
    fn planted_triangles_are_recovered_exactly() {
        let gen = PlantedLight::new(24, 6);
        let g = gen.generate();
        let listed = list_all(&g);
        assert_eq!(listed.len(), 6);
        for t in gen.planted() {
            assert!(listed.contains(&Triangle::new(t[0], t[1], t[2])));
        }
    }
}
