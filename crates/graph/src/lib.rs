//! # congest-graph — graph substrate
//!
//! Graph representation, generators, and the combinatorial machinery used
//! by the reproduction of *"Triangle Finding and Listing in CONGEST
//! Networks"* (Izumi & Le Gall, PODC 2017):
//!
//! * [`Graph`] — an immutable, sorted-adjacency undirected graph with
//!   `O(1)` degree queries and `O(log d)` adjacency tests, plus a
//!   [`GraphBuilder`] for incremental construction;
//! * [`generators`] — the workloads of the experiments: Erdős–Rényi
//!   `G(n,p)`, planted heavy/light triangle instances, triangle-free
//!   families, and classical fixed topologies;
//! * [`triangles`] — centralized reference algorithms (ground truth for the
//!   distributed algorithms): counting, listing, per-edge support `#(e)`;
//! * [`heavy`] — ε-heavy edge/triangle classification (Section 3 of the
//!   paper);
//! * [`delta`] — the set `Δ(X)` of pairs with no common neighbour in `X`
//!   and the `S`/`V`/r-good machinery of Algorithm A(X,r) (Section 3.2),
//!   computed centrally for testing and analysis;
//! * [`properties`] — structural helpers (connectivity, diameter, degrees);
//! * [`AdjacencyView`] — the read-only adjacency abstraction implemented by
//!   [`Graph`] and by live structures (the `congest-stream` indexes), so
//!   the oracle and the CONGEST drivers can run on an evolving graph with
//!   no snapshot rebuild.
//!
//! ```
//! use congest_graph::{generators::Gnp, Graph, NodeId};
//!
//! let g: Graph = Gnp::new(50, 0.2).seeded(1).generate();
//! assert_eq!(g.node_count(), 50);
//! let ref_triangles = congest_graph::triangles::list_all(&g);
//! for t in &ref_triangles {
//!     assert!(g.is_triangle(*t));
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
pub mod delta;
mod error;
pub mod generators;
mod graph;
pub mod heavy;
mod node;
pub mod properties;
pub mod temporal;
mod triangle;
pub mod triangles;
mod view;

pub use builder::GraphBuilder;
pub use error::GraphError;
pub use graph::Graph;
pub use node::NodeId;
pub use triangle::{Edge, Triangle, TriangleSet};
pub use view::{
    count_common, for_each_common, intersect_sorted, intersection_cost_estimate, AdjacencyView,
    NodeIdRange, GALLOP_RATIO,
};
