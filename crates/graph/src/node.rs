//! Node identifiers.

use std::fmt;

/// Identifier of a node (vertex) of the network.
///
/// The paper assumes identifiers are drawn from `[0, n-1]`; the simulator
/// and the graph substrate follow that convention, so a `NodeId` doubles as
/// an index into per-node arrays.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The identifier as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The identifier as a `u64` (for wire encoding).
    pub fn as_u64(self) -> u64 {
        u64::from(self.0)
    }

    /// Builds a `NodeId` from a `usize` index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in `u32` (networks larger than
    /// 4 billion nodes are far outside the simulator's scope).
    pub fn from_index(index: usize) -> Self {
        NodeId(u32::try_from(index).expect("node index exceeds u32::MAX"))
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(value: u32) -> Self {
        NodeId(value)
    }
}

impl From<NodeId> for u32 {
    fn from(value: NodeId) -> Self {
        value.0
    }
}

impl From<NodeId> for usize {
    fn from(value: NodeId) -> Self {
        value.index()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        let id = NodeId::from_index(17);
        assert_eq!(id.index(), 17);
        assert_eq!(id.as_u64(), 17);
        assert_eq!(u32::from(id), 17);
        assert_eq!(usize::from(id), 17);
        assert_eq!(NodeId::from(17u32), id);
    }

    #[test]
    fn ordering_follows_numeric_order() {
        assert!(NodeId(3) < NodeId(10));
        assert_eq!(NodeId(5), NodeId(5));
    }

    #[test]
    fn debug_and_display() {
        assert_eq!(format!("{:?}", NodeId(4)), "v4");
        assert_eq!(format!("{}", NodeId(4)), "4");
    }
}
