//! ε-heavy edges and triangles (Section 3 of the paper).
//!
//! A triangle `t` is **ε-heavy** if it contains an edge `e` with support
//! `#(e) ≥ n^ε`, i.e. an edge shared by at least `n^ε` triangles. The
//! paper's upper bounds split the work between Algorithm A1/A2 (which handle
//! ε-heavy triangles) and Algorithm A3 (which handles the remaining, light
//! triangles). This module provides the centralized classification used by
//! tests and by the experiment harness to validate that split.

use crate::{triangles, Edge, Graph, Triangle, TriangleSet};

/// The heaviness threshold `n^ε`, as a real number, for a graph on `n`
/// nodes.
///
/// ```
/// use congest_graph::heavy::threshold;
/// assert!((threshold(100, 0.5) - 10.0).abs() < 1e-9);
/// assert!((threshold(100, 0.0) - 1.0).abs() < 1e-9);
/// ```
pub fn threshold(n: usize, epsilon: f64) -> f64 {
    (n as f64).powf(epsilon)
}

/// Whether the edge `e` is heavy for the given threshold exponent, i.e.
/// `#(e) ≥ n^ε`.
pub fn is_heavy_edge(g: &Graph, e: Edge, epsilon: f64) -> bool {
    let support = g.edge_support(e.lo(), e.hi()) as f64;
    support >= threshold(g.node_count(), epsilon)
}

/// Whether the triangle `t` is ε-heavy: at least one of its edges is heavy.
pub fn is_heavy_triangle(g: &Graph, t: Triangle, epsilon: f64) -> bool {
    t.edges().iter().any(|&e| is_heavy_edge(g, e, epsilon))
}

/// Splits `T(G)` into the ε-heavy triangles `T_ε(G)` and the rest.
///
/// Returns `(heavy, light)`.
pub fn partition_by_heaviness(g: &Graph, epsilon: f64) -> (TriangleSet, TriangleSet) {
    let mut heavy = TriangleSet::new();
    let mut light = TriangleSet::new();
    for t in &triangles::list_all(g) {
        if is_heavy_triangle(g, *t, epsilon) {
            heavy.insert(*t);
        } else {
            light.insert(*t);
        }
    }
    (heavy, light)
}

/// All heavy edges of the graph, i.e. edges with `#(e) ≥ n^ε`.
pub fn heavy_edges(g: &Graph, epsilon: f64) -> Vec<Edge> {
    g.edges()
        .filter(|&e| is_heavy_edge(g, e, epsilon))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{Classic, PlantedHeavy, PlantedLight};
    use crate::NodeId;

    #[test]
    fn threshold_is_n_to_the_epsilon() {
        assert!((threshold(16, 0.5) - 4.0).abs() < 1e-12);
        assert!((threshold(16, 0.25) - 2.0).abs() < 1e-12);
        assert!((threshold(1, 0.7) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn planted_heavy_edge_is_classified_heavy() {
        let n = 60;
        let gen = PlantedHeavy::new(n, 20);
        let g = gen.generate();
        let (a, b) = gen.heavy_edge();
        let e = Edge::new(a, b);
        // 20 >= 60^0.5 ≈ 7.75.
        assert!(is_heavy_edge(&g, e, 0.5));
        // But not for epsilon = 1 (60^1 = 60 > 20).
        assert!(!is_heavy_edge(&g, e, 1.0));
        let (heavy, light) = partition_by_heaviness(&g, 0.5);
        assert_eq!(heavy.len(), 20);
        assert!(light.is_empty());
    }

    #[test]
    fn planted_light_triangles_are_classified_light() {
        let g = PlantedLight::new(30, 5).generate();
        // Threshold 30^0.3 ≈ 2.8 > 1 = support of every planted edge.
        let (heavy, light) = partition_by_heaviness(&g, 0.3);
        assert!(heavy.is_empty());
        assert_eq!(light.len(), 5);
    }

    #[test]
    fn epsilon_zero_makes_every_triangle_heavy() {
        // n^0 = 1 and every triangle edge has support >= 1.
        let g = Classic::Complete(6).generate();
        let (heavy, light) = partition_by_heaviness(&g, 0.0);
        assert_eq!(heavy.len(), 20);
        assert!(light.is_empty());
    }

    #[test]
    fn partition_is_exhaustive_and_disjoint() {
        let g = Classic::Complete(7).generate();
        let all = triangles::list_all(&g);
        let (heavy, light) = partition_by_heaviness(&g, 0.8);
        assert_eq!(heavy.len() + light.len(), all.len());
        for t in &heavy {
            assert!(!light.contains(t));
        }
    }

    #[test]
    fn heavy_edges_listing() {
        let gen = PlantedHeavy::new(40, 10);
        let g = gen.generate();
        let edges = heavy_edges(&g, 0.5);
        // Only the planted edge {0,1} has support >= 40^0.5 ≈ 6.3; the spoke
        // edges each have support exactly 1.
        assert_eq!(edges, vec![Edge::new(NodeId(0), NodeId(1))]);
    }
}
