//! Immutable undirected graph with sorted adjacency lists.

use std::fmt;

use crate::{Edge, GraphBuilder, NodeId, Triangle};

/// An immutable, simple, undirected graph on nodes `0..n`.
///
/// The representation is a compressed sparse row (CSR) layout: one sorted
/// neighbour slice per node. Adjacency tests are `O(log d)`, neighbour
/// iteration is contiguous, and the structure is cheap to share with the
/// simulator's per-node programs (`Arc<Graph>`).
///
/// Use [`GraphBuilder`] or one of the [`generators`](crate::generators) to
/// construct a graph.
///
/// ```
/// use congest_graph::{Graph, GraphBuilder, NodeId};
///
/// # fn main() -> Result<(), congest_graph::GraphError> {
/// let mut b = GraphBuilder::new(4);
/// b.add_edge(NodeId(0), NodeId(1))?;
/// b.add_edge(NodeId(1), NodeId(2))?;
/// b.add_edge(NodeId(0), NodeId(2))?;
/// let g: Graph = b.build();
///
/// assert_eq!(g.node_count(), 4);
/// assert_eq!(g.edge_count(), 3);
/// assert!(g.has_edge(NodeId(0), NodeId(2)));
/// assert_eq!(g.degree(NodeId(3)), 0);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Graph {
    /// CSR offsets: neighbours of node `i` live in
    /// `neighbors[offsets[i]..offsets[i+1]]`.
    offsets: Vec<usize>,
    /// Concatenated sorted neighbour lists.
    neighbors: Vec<NodeId>,
    /// Number of undirected edges.
    edge_count: usize,
}

impl Graph {
    pub(crate) fn from_adjacency(adjacency: Vec<Vec<NodeId>>) -> Self {
        let mut offsets = Vec::with_capacity(adjacency.len() + 1);
        let mut neighbors = Vec::new();
        let mut directed = 0usize;
        offsets.push(0);
        for mut list in adjacency {
            list.sort_unstable();
            list.dedup();
            directed += list.len();
            neighbors.extend_from_slice(&list);
            offsets.push(neighbors.len());
        }
        debug_assert!(
            directed.is_multiple_of(2),
            "undirected adjacency must be symmetric"
        );
        Graph {
            offsets,
            neighbors,
            edge_count: directed / 2,
        }
    }

    /// Number of nodes `n`.
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges `m`.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Iterator over all node identifiers `0..n`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.node_count()).map(NodeId::from_index)
    }

    /// Sorted neighbour list of `node` (the set `N(node)` of the paper).
    ///
    /// # Panics
    ///
    /// Panics if `node` is not a node of the graph.
    pub fn neighbors(&self, node: NodeId) -> &[NodeId] {
        let i = node.index();
        assert!(i < self.node_count(), "node {node} out of range");
        &self.neighbors[self.offsets[i]..self.offsets[i + 1]]
    }

    /// Degree of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not a node of the graph.
    pub fn degree(&self, node: NodeId) -> usize {
        self.neighbors(node).len()
    }

    /// Maximum degree `d_max` over all nodes (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        self.nodes().map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Whether `{a, b}` is an edge of the graph.
    ///
    /// Self-queries (`a == b`) return `false`.
    pub fn has_edge(&self, a: NodeId, b: NodeId) -> bool {
        if a == b || a.index() >= self.node_count() || b.index() >= self.node_count() {
            return false;
        }
        // Search from the lower-degree endpoint.
        let (from, to) = if self.degree(a) <= self.degree(b) {
            (a, b)
        } else {
            (b, a)
        };
        self.neighbors(from).binary_search(&to).is_ok()
    }

    /// Whether the triple `t` has its three pairs in the edge set, i.e. is
    /// an element of `T(G)`.
    pub fn is_triangle(&self, t: Triangle) -> bool {
        t.edges().iter().all(|e| self.has_edge(e.lo(), e.hi()))
    }

    /// Iterator over all undirected edges, each reported once with
    /// `lo < hi`, in lexicographic order.
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.nodes().flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| Edge::new(u, v))
        })
    }

    /// The set of common neighbours of `a` and `b`, i.e. the nodes `l` with
    /// `{a,l} ∈ E` and `{b,l} ∈ E` (via the shared
    /// [`intersect_sorted`](crate::intersect_sorted) core).
    pub fn common_neighbors(&self, a: NodeId, b: NodeId) -> Vec<NodeId> {
        crate::intersect_sorted(self.neighbors(a), self.neighbors(b))
    }

    /// The edge support `#({a,b})` of the paper: the number of common
    /// neighbours of `a` and `b` (the number of triangles containing the
    /// edge, when `{a,b}` is an edge).
    pub fn edge_support(&self, a: NodeId, b: NodeId) -> usize {
        crate::count_common(self.neighbors(a), self.neighbors(b))
    }

    /// Returns a mutable copy of the graph as a builder, to derive modified
    /// instances (used by generators that plant structures into a base
    /// graph).
    pub fn to_builder(&self) -> GraphBuilder {
        let mut b = GraphBuilder::new(self.node_count());
        for e in self.edges() {
            b.add_edge(e.lo(), e.hi())
                .expect("edges of a valid graph are valid builder input");
        }
        b
    }
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Graph(n={}, m={}, d_max={})",
            self.node_count(),
            self.edge_count(),
            self.max_degree()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn v(i: u32) -> NodeId {
        NodeId(i)
    }

    fn triangle_graph() -> Graph {
        let mut b = GraphBuilder::new(5);
        b.add_edge(v(0), v(1)).unwrap();
        b.add_edge(v(1), v(2)).unwrap();
        b.add_edge(v(0), v(2)).unwrap();
        b.add_edge(v(2), v(3)).unwrap();
        b.build()
    }

    #[test]
    fn counts_and_degrees() {
        let g = triangle_graph();
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.degree(v(2)), 3);
        assert_eq!(g.degree(v(4)), 0);
        assert_eq!(g.max_degree(), 3);
    }

    #[test]
    fn adjacency_queries() {
        let g = triangle_graph();
        assert!(g.has_edge(v(0), v(1)));
        assert!(g.has_edge(v(1), v(0)));
        assert!(!g.has_edge(v(0), v(3)));
        assert!(!g.has_edge(v(0), v(0)));
        assert!(!g.has_edge(v(0), v(99)));
        assert_eq!(g.neighbors(v(2)), &[v(0), v(1), v(3)]);
    }

    #[test]
    fn triangle_membership() {
        let g = triangle_graph();
        assert!(g.is_triangle(Triangle::new(v(0), v(1), v(2))));
        assert!(!g.is_triangle(Triangle::new(v(1), v(2), v(3))));
    }

    #[test]
    fn edges_are_listed_once_each() {
        let g = triangle_graph();
        let edges: Vec<Edge> = g.edges().collect();
        assert_eq!(edges.len(), 4);
        assert!(edges.contains(&Edge::new(v(0), v(2))));
        // Lexicographic by (lo, hi).
        let mut sorted = edges.clone();
        sorted.sort();
        assert_eq!(edges, sorted);
    }

    #[test]
    fn common_neighbors_and_support() {
        let g = triangle_graph();
        assert_eq!(g.common_neighbors(v(0), v(1)), vec![v(2)]);
        assert_eq!(g.edge_support(v(0), v(1)), 1);
        assert_eq!(g.edge_support(v(2), v(3)), 0);
        assert_eq!(g.common_neighbors(v(0), v(3)), vec![v(2)]);
    }

    #[test]
    fn duplicate_edges_are_deduplicated() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(v(0), v(1)).unwrap();
        b.add_edge(v(1), v(0)).unwrap();
        let g = b.build();
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.degree(v(0)), 1);
    }

    #[test]
    fn to_builder_round_trips() {
        let g = triangle_graph();
        let rebuilt = g.to_builder().build();
        assert_eq!(g, rebuilt);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn neighbors_of_missing_node_panics() {
        let g = triangle_graph();
        let _ = g.neighbors(v(7));
    }

    #[test]
    fn debug_summarizes() {
        let g = triangle_graph();
        let s = format!("{g:?}");
        assert!(s.contains("n=5"));
        assert!(s.contains("m=4"));
    }
}
