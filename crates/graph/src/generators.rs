//! Workload generators.
//!
//! These are the input instances of the experiments in EXPERIMENTS.md:
//!
//! * [`Gnp`] — the Erdős–Rényi random graph `G(n, p)`; with `p = 1/2` it is
//!   the hard distribution of the paper's lower bound (Theorem 3).
//! * [`PlantedHeavy`] — a graph containing an edge shared by at least
//!   `n^ε` triangles, i.e. a guaranteed ε-heavy triangle (workload of
//!   Proposition 2 / experiment E4).
//! * [`PlantedLight`] — a sparse background graph with planted triangles
//!   whose edges all have small support, i.e. triangles that are *not*
//!   ε-heavy (workload of Proposition 3 / experiment E5).
//! * [`TriangleFreeBipartite`] — a triangle-free instance, used to verify
//!   that the finding algorithms report "not found" and that listing
//!   outputs nothing.
//! * [`Classic`] — deterministic topologies (path, cycle, star, complete
//!   graph, complete bipartite) used by unit tests and examples.
//!
//! All generators are deterministic once seeded, so experiments are
//! reproducible.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{Graph, GraphBuilder, NodeId};

/// Default seed used by generators when the caller does not provide one.
const DEFAULT_SEED: u64 = 0x1254_7717_2017_0001;

/// The Erdős–Rényi random graph `G(n, p)`: every unordered pair becomes an
/// edge independently with probability `p`.
///
/// ```
/// use congest_graph::generators::Gnp;
/// let g = Gnp::new(64, 0.5).seeded(42).generate();
/// assert_eq!(g.node_count(), 64);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gnp {
    n: usize,
    p: f64,
    seed: u64,
}

impl Gnp {
    /// A `G(n, p)` generator with the default seed.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not a probability in `[0, 1]`.
    pub fn new(n: usize, p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "edge probability must be in [0, 1], got {p}"
        );
        Gnp {
            n,
            p,
            seed: DEFAULT_SEED,
        }
    }

    /// Sets the random seed.
    pub fn seeded(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Generates the graph.
    pub fn generate(&self) -> Graph {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut b = GraphBuilder::new(self.n);
        for u in 0..self.n {
            for v in (u + 1)..self.n {
                if rng.gen_bool(self.p) {
                    b.add_edge(NodeId::from_index(u), NodeId::from_index(v))
                        .expect("generated endpoints are always in range");
                }
            }
        }
        b.build()
    }
}

/// A graph with a planted ε-heavy edge: nodes `0` and `1` are adjacent and
/// share `support` common neighbours, so the edge `{0,1}` is contained in
/// `support` triangles. A sparse `G(n, background_p)` is overlaid as noise.
///
/// Choosing `support >= n^ε` makes every triangle through `{0,1}` ε-heavy,
/// which is exactly the case Algorithm A2 (Proposition 2) is responsible
/// for.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlantedHeavy {
    n: usize,
    support: usize,
    background_p: f64,
    seed: u64,
}

impl PlantedHeavy {
    /// A planted-heavy-edge generator on `n` nodes where the edge `{0,1}`
    /// has the given `support` (number of common neighbours).
    ///
    /// # Panics
    ///
    /// Panics if `n < support + 2` (not enough nodes to host the common
    /// neighbours) or if `background_p` is not a probability.
    pub fn new(n: usize, support: usize) -> Self {
        assert!(
            n >= support + 2,
            "need at least support + 2 = {} nodes, got {n}",
            support + 2
        );
        PlantedHeavy {
            n,
            support,
            background_p: 0.0,
            seed: DEFAULT_SEED,
        }
    }

    /// Overlays a `G(n, p)` background on top of the planted structure.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not a probability in `[0, 1]`.
    pub fn with_background(mut self, p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "background probability must be in [0, 1], got {p}"
        );
        self.background_p = p;
        self
    }

    /// Sets the random seed (only relevant when a background is present).
    pub fn seeded(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The planted heavy edge, as node indices `(0, 1)`.
    pub fn heavy_edge(&self) -> (NodeId, NodeId) {
        (NodeId(0), NodeId(1))
    }

    /// Generates the graph.
    pub fn generate(&self) -> Graph {
        let mut b = GraphBuilder::new(self.n);
        let a = NodeId(0);
        let c = NodeId(1);
        b.add_edge(a, c).expect("planted endpoints are in range");
        for i in 0..self.support {
            let w = NodeId::from_index(2 + i);
            b.add_edge(a, w).expect("planted endpoints are in range");
            b.add_edge(c, w).expect("planted endpoints are in range");
        }
        if self.background_p > 0.0 {
            let mut rng = StdRng::seed_from_u64(self.seed);
            for u in 0..self.n {
                for v in (u + 1)..self.n {
                    if rng.gen_bool(self.background_p) {
                        b.add_edge(NodeId::from_index(u), NodeId::from_index(v))
                            .expect("generated endpoints are always in range");
                    }
                }
            }
        }
        b.build()
    }
}

/// A sparse graph with planted *light* (non-heavy) triangles: `count`
/// vertex-disjoint triangles plus an optional sparse background. Every
/// planted edge has support exactly 1 (just its own triangle) as long as the
/// background stays sparse, so the planted triangles are not ε-heavy for any
/// ε with `n^ε > 1` — the case handled by Algorithm A3 (Proposition 3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlantedLight {
    n: usize,
    count: usize,
    background_p: f64,
    seed: u64,
}

impl PlantedLight {
    /// A generator planting `count` vertex-disjoint triangles on `n` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `3 * count > n`.
    pub fn new(n: usize, count: usize) -> Self {
        assert!(
            3 * count <= n,
            "cannot plant {count} disjoint triangles in {n} nodes"
        );
        PlantedLight {
            n,
            count,
            background_p: 0.0,
            seed: DEFAULT_SEED,
        }
    }

    /// Overlays a `G(n, p)` background on top of the planted triangles.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not a probability in `[0, 1]`.
    pub fn with_background(mut self, p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "background probability must be in [0, 1], got {p}"
        );
        self.background_p = p;
        self
    }

    /// Sets the random seed (only relevant when a background is present).
    pub fn seeded(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The planted triangles, as triples of node indices.
    pub fn planted(&self) -> Vec<[NodeId; 3]> {
        (0..self.count)
            .map(|i| {
                [
                    NodeId::from_index(3 * i),
                    NodeId::from_index(3 * i + 1),
                    NodeId::from_index(3 * i + 2),
                ]
            })
            .collect()
    }

    /// Generates the graph.
    pub fn generate(&self) -> Graph {
        let mut b = GraphBuilder::new(self.n);
        for t in self.planted() {
            b.add_edge(t[0], t[1])
                .expect("planted endpoints are in range");
            b.add_edge(t[1], t[2])
                .expect("planted endpoints are in range");
            b.add_edge(t[0], t[2])
                .expect("planted endpoints are in range");
        }
        if self.background_p > 0.0 {
            let mut rng = StdRng::seed_from_u64(self.seed);
            for u in 0..self.n {
                for v in (u + 1)..self.n {
                    if rng.gen_bool(self.background_p) {
                        b.add_edge(NodeId::from_index(u), NodeId::from_index(v))
                            .expect("generated endpoints are always in range");
                    }
                }
            }
        }
        b.build()
    }
}

/// A random bipartite graph, which is triangle-free by construction.
///
/// Nodes `0..left` form one side, `left..n` the other; each cross pair is an
/// edge with probability `p`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TriangleFreeBipartite {
    left: usize,
    right: usize,
    p: f64,
    seed: u64,
}

impl TriangleFreeBipartite {
    /// A bipartite generator with sides of size `left` and `right` and edge
    /// probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not a probability in `[0, 1]`.
    pub fn new(left: usize, right: usize, p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "edge probability must be in [0, 1], got {p}"
        );
        TriangleFreeBipartite {
            left,
            right,
            p,
            seed: DEFAULT_SEED,
        }
    }

    /// Sets the random seed.
    pub fn seeded(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Generates the graph.
    pub fn generate(&self) -> Graph {
        let n = self.left + self.right;
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut b = GraphBuilder::new(n);
        for u in 0..self.left {
            for v in self.left..n {
                if rng.gen_bool(self.p) {
                    b.add_edge(NodeId::from_index(u), NodeId::from_index(v))
                        .expect("generated endpoints are always in range");
                }
            }
        }
        b.build()
    }
}

/// Deterministic classical topologies used by tests and examples.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Classic {
    /// A simple path `0 - 1 - … - (n-1)`.
    Path(usize),
    /// A cycle on `n` nodes.
    Cycle(usize),
    /// A star with node `0` at the centre.
    Star(usize),
    /// The complete graph `K_n`.
    Complete(usize),
    /// The complete bipartite graph `K_{a,b}` (triangle-free).
    CompleteBipartite(usize, usize),
}

impl Classic {
    /// Generates the graph.
    pub fn generate(&self) -> Graph {
        match *self {
            Classic::Path(n) => {
                let mut b = GraphBuilder::new(n);
                for i in 1..n {
                    b.add_edge(NodeId::from_index(i - 1), NodeId::from_index(i))
                        .expect("path endpoints are in range");
                }
                b.build()
            }
            Classic::Cycle(n) => {
                let mut b = GraphBuilder::new(n);
                if n >= 3 {
                    for i in 0..n {
                        b.add_edge(NodeId::from_index(i), NodeId::from_index((i + 1) % n))
                            .expect("cycle endpoints are in range");
                    }
                }
                b.build()
            }
            Classic::Star(n) => {
                let mut b = GraphBuilder::new(n);
                for i in 1..n {
                    b.add_edge(NodeId(0), NodeId::from_index(i))
                        .expect("star endpoints are in range");
                }
                b.build()
            }
            Classic::Complete(n) => {
                let mut b = GraphBuilder::new(n);
                for u in 0..n {
                    for v in (u + 1)..n {
                        b.add_edge(NodeId::from_index(u), NodeId::from_index(v))
                            .expect("complete-graph endpoints are in range");
                    }
                }
                b.build()
            }
            Classic::CompleteBipartite(a, bs) => {
                let mut b = GraphBuilder::new(a + bs);
                for u in 0..a {
                    for v in a..(a + bs) {
                        b.add_edge(NodeId::from_index(u), NodeId::from_index(v))
                            .expect("bipartite endpoints are in range");
                    }
                }
                b.build()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::triangles;

    #[test]
    fn gnp_is_deterministic_per_seed() {
        let a = Gnp::new(30, 0.3).seeded(9).generate();
        let b = Gnp::new(30, 0.3).seeded(9).generate();
        let c = Gnp::new(30, 0.3).seeded(10).generate();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn gnp_extremes() {
        let empty = Gnp::new(10, 0.0).generate();
        assert_eq!(empty.edge_count(), 0);
        let full = Gnp::new(10, 1.0).generate();
        assert_eq!(full.edge_count(), 45);
    }

    #[test]
    fn planted_heavy_has_the_promised_support() {
        let gen = PlantedHeavy::new(50, 12);
        let g = gen.generate();
        let (a, b) = gen.heavy_edge();
        assert!(g.has_edge(a, b));
        assert_eq!(g.edge_support(a, b), 12);
        assert_eq!(triangles::count_all(&g), 12);
    }

    #[test]
    fn planted_heavy_with_background_keeps_support_at_least_planted() {
        let gen = PlantedHeavy::new(60, 8).with_background(0.05).seeded(3);
        let g = gen.generate();
        let (a, b) = gen.heavy_edge();
        assert!(g.edge_support(a, b) >= 8);
    }

    #[test]
    fn planted_light_triangles_are_present_and_light() {
        let gen = PlantedLight::new(30, 5);
        let g = gen.generate();
        assert_eq!(triangles::count_all(&g), 5);
        for t in gen.planted() {
            assert!(g.is_triangle(crate::Triangle::new(t[0], t[1], t[2])));
            // Every planted edge has support exactly 1 without background.
            assert_eq!(g.edge_support(t[0], t[1]), 1);
        }
    }

    #[test]
    fn bipartite_is_triangle_free() {
        let g = TriangleFreeBipartite::new(20, 25, 0.4)
            .seeded(11)
            .generate();
        assert_eq!(triangles::count_all(&g), 0);
        let g = Classic::CompleteBipartite(10, 10).generate();
        assert_eq!(triangles::count_all(&g), 0);
    }

    #[test]
    fn classic_shapes() {
        assert_eq!(Classic::Path(5).generate().edge_count(), 4);
        assert_eq!(Classic::Cycle(5).generate().edge_count(), 5);
        assert_eq!(Classic::Cycle(2).generate().edge_count(), 0);
        assert_eq!(Classic::Star(6).generate().max_degree(), 5);
        let k5 = Classic::Complete(5).generate();
        assert_eq!(k5.edge_count(), 10);
        assert_eq!(triangles::count_all(&k5), 10);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn gnp_rejects_bad_probability() {
        let _ = Gnp::new(10, 1.5);
    }

    #[test]
    #[should_panic(expected = "disjoint triangles")]
    fn planted_light_validates_capacity() {
        let _ = PlantedLight::new(5, 2);
    }
}
