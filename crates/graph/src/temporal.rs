//! Temporal edge-list ingestion: SNAP/LDBC-style `src dst [w] time`
//! files, plus the deterministic synthetic writer CI replays without any
//! network access.
//!
//! The on-disk format is the one the timely/differential replay tools
//! consume: one whitespace-separated record per line, either
//! `src dst time` or `src dst weight time`, with `#`/`%` comment lines
//! and blank lines ignored. Times are non-negative integers in whatever
//! unit the file chooses (SNAP exports use seconds; the synthetic writer
//! uses milliseconds) — the replay driver only ever compares them. A
//! negative weight marks the event as an edge *departure*; any other
//! weight (including the implicit `1` of three-field records) is an
//! arrival. That convention lets one file carry real churn — births and
//! deaths — instead of insert-only growth.
//!
//! Loading is strict where silence would corrupt a benchmark and lenient
//! where real exports are messy:
//!
//! * malformed records (wrong field count, non-numeric tokens) fail with
//!   a line-numbered [`GraphError::ParseEdgeList`] and the load returns
//!   nothing — never a half-parsed timeline;
//! * endpoints at or above an explicitly declared node count fail the
//!   same way (without a declared count the loader infers `max id + 1`);
//! * self-loops are skipped and counted (SNAP exports contain them, and
//!   the simple-graph engines cannot represent them);
//! * exact duplicate events (same time, edge and sign) are dropped and
//!   counted — replaying a duplicated arrival would silently no-op but
//!   still bill the engines for it.
//!
//! The surviving events are stably sorted by time (ties keep file
//! order), so downstream batching is deterministic for a given file, and
//! the whole timeline folds into a [`TemporalEdgeList::fingerprint`]
//! that bench gates compare to refuse cross-source baselines.

use std::path::Path;

use crate::{GraphError, NodeId};

/// Mask folding fingerprints to 52 bits: the value survives a round trip
/// through an `f64` JSON number exactly, which is how the bench gates'
/// flat-key extractor compares it.
const FINGERPRINT_MASK: u64 = (1 << 52) - 1;

/// Folds a word stream into a 52-bit FNV-1a fingerprint.
///
/// Deterministic, order-sensitive, and small enough (`< 2^52`) to embed
/// in bench JSON as a plain number without precision loss. Not a
/// cryptographic hash — it exists so two runs can cheaply agree (or
/// refuse to agree) on *which* input they measured.
pub fn fingerprint64<I: IntoIterator<Item = u64>>(words: I) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for w in words {
        for b in w.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h & FINGERPRINT_MASK
}

/// One timestamped edge event of a temporal edge list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TemporalEvent {
    /// Event time, in the file's own unit.
    pub time: u64,
    /// Lower endpoint (events are normalized so `u < v`).
    pub u: NodeId,
    /// Higher endpoint.
    pub v: NodeId,
    /// Signed weight: negative means the edge departs at `time`, any
    /// other value means it arrives.
    pub weight: i64,
}

impl TemporalEvent {
    /// Whether this event removes the edge (negative weight).
    pub fn is_departure(&self) -> bool {
        self.weight < 0
    }
}

/// A parsed, time-sorted temporal edge list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TemporalEdgeList {
    node_count: usize,
    events: Vec<TemporalEvent>,
    self_loops_skipped: usize,
    duplicates_dropped: usize,
}

impl TemporalEdgeList {
    /// Number of nodes (declared via
    /// [`TemporalLoader::with_node_count`], or inferred as `max id + 1`).
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// The events, stably sorted by time (ties keep file order).
    pub fn events(&self) -> &[TemporalEvent] {
        &self.events
    }

    /// Number of surviving events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the timeline is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Self-loop records skipped during the load.
    pub fn self_loops_skipped(&self) -> usize {
        self.self_loops_skipped
    }

    /// Exact duplicate events dropped during the load.
    pub fn duplicates_dropped(&self) -> usize {
        self.duplicates_dropped
    }

    /// First and last event times, `None` when empty.
    pub fn time_span(&self) -> Option<(u64, u64)> {
        match (self.events.first(), self.events.last()) {
            (Some(first), Some(last)) => Some((first.time, last.time)),
            _ => None,
        }
    }

    /// Deterministic 52-bit fingerprint of the whole timeline (node
    /// count plus every event in order). Two loads agree on it exactly
    /// when they parsed the same effective timeline.
    pub fn fingerprint(&self) -> u64 {
        let header = [0x007E_4A11_u64, self.node_count as u64];
        let words = header.into_iter().chain(self.events.iter().flat_map(|e| {
            [
                e.time,
                e.u.index() as u64,
                e.v.index() as u64,
                e.weight as u64,
            ]
        }));
        fingerprint64(words)
    }
}

/// Parser for `src dst [w] time` edge-list text.
///
/// ```
/// use congest_graph::temporal::TemporalLoader;
///
/// let text = "# toy timeline\n0 1 10\n1 2 -1 20\n";
/// let list = TemporalLoader::new().parse_str(text).unwrap();
/// assert_eq!(list.node_count(), 3);
/// assert_eq!(list.len(), 2);
/// assert!(list.events()[1].is_departure());
/// ```
#[derive(Debug, Clone, Default)]
pub struct TemporalLoader {
    node_count: Option<usize>,
    header_lines: usize,
}

impl TemporalLoader {
    /// A loader with no declared node count and no forced header skip.
    pub fn new() -> Self {
        TemporalLoader::default()
    }

    /// Declares the node count: any endpoint at or above `n` becomes a
    /// line-numbered parse error instead of silently growing the graph.
    pub fn with_node_count(mut self, n: usize) -> Self {
        self.node_count = Some(n);
        self
    }

    /// Unconditionally skips the first `lines` lines (some SNAP exports
    /// carry uncommented header lines, which the timely replay tools
    /// also skip by count).
    pub fn with_header_lines(mut self, lines: usize) -> Self {
        self.header_lines = lines;
        self
    }

    /// Loads and parses a file. I/O failures become
    /// [`GraphError::Io`]; parse failures are line-numbered. Either way
    /// nothing half-applied escapes: the error is the only output.
    pub fn load_path<P: AsRef<Path>>(&self, path: P) -> Result<TemporalEdgeList, GraphError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path).map_err(|e| GraphError::Io {
            path: path.display().to_string(),
            detail: e.to_string(),
        })?;
        self.parse_str(&text)
    }

    /// Parses edge-list text (the file-free form the property tests and
    /// the synthetic writer round-trip through).
    pub fn parse_str(&self, text: &str) -> Result<TemporalEdgeList, GraphError> {
        let mut events: Vec<TemporalEvent> = Vec::new();
        let mut seen = std::collections::HashSet::new();
        let mut self_loops = 0usize;
        let mut duplicates = 0usize;
        let mut max_id = 0usize;

        for (index, raw) in text.lines().enumerate() {
            let line = index + 1;
            if index < self.header_lines {
                continue;
            }
            let trimmed = raw.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
                continue;
            }
            let fields: Vec<&str> = trimmed.split_whitespace().collect();
            let (src, dst, weight, time) = match fields.as_slice() {
                [s, d, t] => (*s, *d, None, *t),
                [s, d, w, t] => (*s, *d, Some(*w), *t),
                _ => {
                    return Err(parse_error(
                        line,
                        format!("expected `src dst [w] time`, got {} field(s)", fields.len()),
                    ));
                }
            };
            let src = parse_field::<u32>(line, "src", src)?;
            let dst = parse_field::<u32>(line, "dst", dst)?;
            let weight = match weight {
                Some(w) => parse_field::<i64>(line, "weight", w)?,
                None => 1,
            };
            let time = parse_field::<u64>(line, "time", time)?;

            if src == dst {
                self_loops += 1;
                continue;
            }
            let (u, v) = if src < dst { (src, dst) } else { (dst, src) };
            if let Some(n) = self.node_count {
                if v as usize >= n {
                    return Err(parse_error(
                        line,
                        format!("node {v} is outside the declared node count {n}"),
                    ));
                }
            }
            max_id = max_id.max(v as usize);
            if !seen.insert((time, u, v, weight < 0)) {
                duplicates += 1;
                continue;
            }
            events.push(TemporalEvent {
                time,
                u: NodeId(u),
                v: NodeId(v),
                weight,
            });
        }

        // Stable by time: records sharing a timestamp keep file order,
        // so the sorted timeline is a pure function of the file bytes.
        events.sort_by_key(|e| e.time);
        let node_count = self
            .node_count
            .unwrap_or(if events.is_empty() { 0 } else { max_id + 1 });
        Ok(TemporalEdgeList {
            node_count,
            events,
            self_loops_skipped: self_loops,
            duplicates_dropped: duplicates,
        })
    }
}

fn parse_error(line: usize, reason: String) -> GraphError {
    GraphError::ParseEdgeList { line, reason }
}

fn parse_field<T: std::str::FromStr>(line: usize, name: &str, token: &str) -> Result<T, GraphError>
where
    T::Err: std::fmt::Display,
{
    token
        .parse::<T>()
        .map_err(|e| parse_error(line, format!("{name} field {token:?}: {e}")))
}

/// Deterministic synthetic temporal-file writer.
///
/// Emits a realistic churn timeline — arrivals of fresh uniform edges
/// interleaved with departures of currently-live ones, at
/// non-decreasing millisecond timestamps — entirely from a seed, so CI
/// can exercise the full writer → loader → replay pipeline with no
/// network access. Output is byte-stable per seed (the seed itself is
/// embedded in the header comment, so distinct seeds can never collide
/// byte-for-byte).
///
/// ```
/// use congest_graph::temporal::{SyntheticTemporal, TemporalLoader};
///
/// let writer = SyntheticTemporal::new(50, 200).seeded(7);
/// let text = writer.render();
/// assert_eq!(text, writer.render()); // byte-stable
/// let list = TemporalLoader::new().parse_str(&text).unwrap();
/// assert_eq!(list.len(), 200);
/// ```
#[derive(Debug, Clone)]
pub struct SyntheticTemporal {
    n: usize,
    events: usize,
    seed: u64,
    remove_fraction: f64,
}

impl SyntheticTemporal {
    /// A writer producing `events` events on `n` nodes (default seed 0,
    /// 30% departures).
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` (no pair to connect) or `events == 0`.
    pub fn new(n: usize, events: usize) -> Self {
        assert!(n >= 2, "need at least 2 nodes to form edges, got {n}");
        assert!(events > 0, "need at least one event");
        SyntheticTemporal {
            n,
            events,
            seed: 0,
            remove_fraction: 0.3,
        }
    }

    /// Sets the seed (builder style).
    pub fn seeded(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the fraction of events that depart a live edge (builder
    /// style, clamped to `[0, 1]`).
    pub fn with_remove_fraction(mut self, fraction: f64) -> Self {
        self.remove_fraction = fraction.clamp(0.0, 1.0);
        self
    }

    /// Renders the timeline as edge-list text.
    pub fn render(&self) -> String {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut out = String::with_capacity(self.events * 12 + 128);
        out.push_str(&format!(
            "# synthetic temporal edge list: n={} events={} seed={:#x}\n",
            self.n, self.events, self.seed
        ));
        out.push_str("# format: src dst w time (w < 0 departs the edge)\n");

        let mut live: Vec<(u32, u32)> = Vec::new();
        let mut time = 0u64;
        for _ in 0..self.events {
            time += rng.gen_range(1u64..=3);
            if !live.is_empty() && rng.gen_bool(self.remove_fraction) {
                let i = rng.gen_range(0..live.len());
                let (u, v) = live.swap_remove(i);
                out.push_str(&format!("{u} {v} -1 {time}\n"));
            } else {
                let u = rng.gen_range(0..self.n as u32);
                let mut v = rng.gen_range(0..self.n as u32);
                while v == u {
                    v = rng.gen_range(0..self.n as u32);
                }
                let (u, v) = if u < v { (u, v) } else { (v, u) };
                if !live.contains(&(u, v)) {
                    live.push((u, v));
                }
                out.push_str(&format!("{u} {v} 1 {time}\n"));
            }
        }
        out
    }

    /// Writes the rendered timeline to `path` ([`GraphError::Io`] on
    /// failure).
    pub fn write_to<P: AsRef<Path>>(&self, path: P) -> Result<(), GraphError> {
        let path = path.as_ref();
        std::fs::write(path, self.render()).map_err(|e| GraphError::Io {
            path: path.display().to_string(),
            detail: e.to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_and_four_field_records_parse() {
        let list = TemporalLoader::new()
            .parse_str("0 5 100\n2 1 -3 50\n")
            .unwrap();
        assert_eq!(list.node_count(), 6);
        // Sorted by time; endpoints normalized lo/hi.
        assert_eq!(
            list.events(),
            &[
                TemporalEvent {
                    time: 50,
                    u: NodeId(1),
                    v: NodeId(2),
                    weight: -3
                },
                TemporalEvent {
                    time: 100,
                    u: NodeId(0),
                    v: NodeId(5),
                    weight: 1
                },
            ]
        );
        assert_eq!(list.time_span(), Some((50, 100)));
    }

    #[test]
    fn comments_blanks_and_headers_are_skipped() {
        let text = "garbage header line\n# comment\n% matrix-market comment\n\n0 1 7\n";
        let list = TemporalLoader::new()
            .with_header_lines(1)
            .parse_str(text)
            .unwrap();
        assert_eq!(list.len(), 1);
    }

    #[test]
    fn malformed_lines_carry_their_line_number() {
        for (text, line) in [
            ("0 1 5\nnot numbers here\n", 2),
            ("0 1\n", 1),
            ("0 1 2 3 4 5\n", 1),
            ("0 1 5\n1 2 x\n", 2),
        ] {
            match TemporalLoader::new().parse_str(text) {
                Err(GraphError::ParseEdgeList { line: l, .. }) => assert_eq!(l, line, "{text:?}"),
                other => panic!("expected a line-{line} parse error for {text:?}, got {other:?}"),
            }
        }
    }

    #[test]
    fn declared_node_count_rejects_out_of_range_ids() {
        let err = TemporalLoader::new()
            .with_node_count(3)
            .parse_str("0 1 5\n0 3 6\n")
            .unwrap_err();
        match err {
            GraphError::ParseEdgeList { line, reason } => {
                assert_eq!(line, 2);
                assert!(reason.contains("node 3"), "{reason}");
            }
            other => panic!("unexpected {other:?}"),
        }
        // Without a declared count the same text infers n = 4.
        let list = TemporalLoader::new().parse_str("0 1 5\n0 3 6\n").unwrap();
        assert_eq!(list.node_count(), 4);
    }

    #[test]
    fn self_loops_and_duplicates_are_counted_not_kept() {
        let list = TemporalLoader::new()
            .parse_str("3 3 1\n0 1 5\n1 0 5\n0 1 -1 5\n")
            .unwrap();
        assert_eq!(list.self_loops_skipped(), 1);
        // `1 0 5` duplicates `0 1 5` after normalization; the departure
        // at the same time is a distinct event.
        assert_eq!(list.duplicates_dropped(), 1);
        assert_eq!(list.len(), 2);
    }

    #[test]
    fn missing_file_is_a_typed_io_error() {
        let err = TemporalLoader::new()
            .load_path("/definitely/not/here.txt")
            .unwrap_err();
        match err {
            GraphError::Io { path, .. } => assert!(path.contains("not/here")),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn fingerprints_distinguish_timelines() {
        let a = TemporalLoader::new().parse_str("0 1 5\n1 2 9\n").unwrap();
        let b = TemporalLoader::new().parse_str("0 1 5\n1 2 10\n").unwrap();
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_eq!(
            a.fingerprint(),
            TemporalLoader::new()
                .parse_str("0 1 5\n1 2 9\n")
                .unwrap()
                .fingerprint()
        );
        assert!(a.fingerprint() < (1 << 52));
    }

    #[test]
    fn synthetic_writer_is_deterministic_and_loadable() {
        let w = SyntheticTemporal::new(30, 120).seeded(42);
        assert_eq!(w.render(), w.render());
        assert_ne!(
            w.render(),
            SyntheticTemporal::new(30, 120).seeded(43).render()
        );
        let list = TemporalLoader::new().parse_str(&w.render()).unwrap();
        assert_eq!(list.len(), 120);
        assert!(list.node_count() <= 30);
        assert!(list.events().iter().any(|e| e.is_departure()));
        assert!(list.events().windows(2).all(|p| p[0].time <= p[1].time));
    }

    #[test]
    fn empty_timeline_is_fine() {
        let list = TemporalLoader::new().parse_str("# nothing\n").unwrap();
        assert!(list.is_empty());
        assert_eq!(list.node_count(), 0);
        assert_eq!(list.time_span(), None);
    }
}
