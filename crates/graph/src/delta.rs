//! The set `Δ(X)` and the `S` / `V` / r-good machinery of Algorithm A(X,r)
//! (Section 3.2 of the paper), computed centrally.
//!
//! The distributed Algorithm A(X,r) implemented in `congest-triangles`
//! computes these quantities locally at each node from the information it
//! has received. The centralized versions here serve three purposes:
//!
//! * ground truth in unit and property tests of the distributed
//!   implementation,
//! * direct empirical verification of Lemmas 2 and 3 (experiment E9),
//! * analysis helpers for the experiment harness (e.g. measuring how many
//!   nodes are r-good on a given instance).

use std::collections::BTreeSet;

use crate::{Graph, NodeId};

/// Whether the pair `{a, b}` belongs to `Δ(X)`: no node of `X` is adjacent
/// to both `a` and `b`.
///
/// Note that `Δ(X)` is defined over all pairs of nodes, not only edges.
pub fn pair_in_delta(g: &Graph, x: &BTreeSet<NodeId>, a: NodeId, b: NodeId) -> bool {
    !g.common_neighbors(a, b).iter().any(|w| x.contains(w))
}

/// The set `S^X_U(j, k)` of the paper: the nodes `l ∈ U` such that
/// `{j, l} ∈ Δ(X)` and `{k, l} ∈ E`.
///
/// The definition is asymmetric in `(j, k)`.
pub fn s_set(
    g: &Graph,
    x: &BTreeSet<NodeId>,
    u: &BTreeSet<NodeId>,
    j: NodeId,
    k: NodeId,
) -> Vec<NodeId> {
    g.neighbors(k)
        .iter()
        .copied()
        .filter(|&l| l != j && u.contains(&l) && pair_in_delta(g, x, j, l))
        .collect()
}

/// The set `V^X_{U,r}(j)` of the paper: the neighbours `k ∈ U` of `j` for
/// which `|S^X_U(j, k)| > r`.
pub fn v_set(
    g: &Graph,
    x: &BTreeSet<NodeId>,
    u: &BTreeSet<NodeId>,
    r: f64,
    j: NodeId,
) -> Vec<NodeId> {
    g.neighbors(j)
        .iter()
        .copied()
        .filter(|&k| u.contains(&k) && (s_set(g, x, u, j, k).len() as f64) > r)
        .collect()
}

/// Whether node `j` is r-good for `(U, X)` (Definition 1): it has at most
/// `r` neighbours `k ∈ U` with `|S^X_U(j,k)| > r`.
pub fn is_r_good(g: &Graph, x: &BTreeSet<NodeId>, u: &BTreeSet<NodeId>, r: f64, j: NodeId) -> bool {
    (v_set(g, x, u, r, j).len() as f64) <= r
}

/// The nodes of `U` that are **not** r-good for `(U, X)` — the quantity
/// bounded by Lemma 3.
pub fn bad_nodes(g: &Graph, x: &BTreeSet<NodeId>, u: &BTreeSet<NodeId>, r: f64) -> Vec<NodeId> {
    u.iter()
        .copied()
        .filter(|&j| !is_r_good(g, x, u, r, j))
        .collect()
}

/// Statement (2) of Lemma 3: every pair in `Δ(X)` has support
/// `< 27 n^ε log n`. Returns `true` when the statement holds for the given
/// `X` (checked over all pairs of nodes, as in the paper).
pub fn statement2_holds(g: &Graph, x: &BTreeSet<NodeId>, epsilon: f64) -> bool {
    let n = g.node_count();
    let bound = 27.0 * (n as f64).powf(epsilon) * (n as f64).ln();
    for a in g.nodes() {
        for b in g.nodes() {
            if a >= b {
                continue;
            }
            if pair_in_delta(g, x, a, b) && (g.edge_support(a, b) as f64) >= bound {
                return false;
            }
        }
    }
    true
}

/// Samples the random set `X` of Lemma 2: each node joins independently
/// with probability `1 / (9 n^ε)`.
pub fn sample_x<R: rand::Rng>(g: &Graph, epsilon: f64, rng: &mut R) -> BTreeSet<NodeId> {
    let n = g.node_count();
    let p = 1.0 / (9.0 * (n as f64).powf(epsilon));
    let p = p.clamp(0.0, 1.0);
    g.nodes().filter(|_| rng.gen_bool(p)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{Classic, Gnp, PlantedLight};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn v(i: u32) -> NodeId {
        NodeId(i)
    }

    fn all_nodes(g: &Graph) -> BTreeSet<NodeId> {
        g.nodes().collect()
    }

    #[test]
    fn delta_of_empty_x_contains_every_pair() {
        let g = Classic::Complete(6).generate();
        let x = BTreeSet::new();
        for a in g.nodes() {
            for b in g.nodes() {
                if a < b {
                    assert!(pair_in_delta(&g, &x, a, b));
                }
            }
        }
    }

    #[test]
    fn delta_removes_pairs_with_a_common_neighbor_in_x() {
        // Path 0-1-2: the pair {0,2} has common neighbour 1.
        let g = Classic::Path(3).generate();
        let x: BTreeSet<NodeId> = [v(1)].into_iter().collect();
        assert!(!pair_in_delta(&g, &x, v(0), v(2)));
        // The pair {0,1} has no common neighbour at all, so it stays.
        assert!(pair_in_delta(&g, &x, v(0), v(1)));
    }

    #[test]
    fn s_set_matches_definition_on_a_small_graph() {
        // Triangle 0-1-2 plus pendant 3 attached to 2.
        let mut b = crate::GraphBuilder::new(4);
        b.add_edges([(0, 1), (1, 2), (0, 2), (2, 3)]).unwrap();
        let g = b.build();
        let u = all_nodes(&g);
        let x = BTreeSet::new();
        // S(j=0, k=2) = { l in N(2) : {0,l} in Delta(X) } = {1, 3} (and 0
        // itself is excluded because {0,0} is not a pair).
        let s = s_set(&g, &x, &u, v(0), v(2));
        assert_eq!(s, vec![v(1), v(3)]);
        // With X = {2}: {0,1} has common neighbour 2 in X, so 1 drops out;
        // {0,3} has common neighbour 2 in X, so 3 drops out.
        let x: BTreeSet<NodeId> = [v(2)].into_iter().collect();
        let s = s_set(&g, &x, &u, v(0), v(2));
        assert!(s.is_empty());
    }

    #[test]
    fn s_set_excludes_nodes_outside_u() {
        let g = Classic::Complete(5).generate();
        let x = BTreeSet::new();
        let mut u = all_nodes(&g);
        u.remove(&v(4));
        let s = s_set(&g, &x, &u, v(0), v(1));
        assert!(!s.contains(&v(4)));
    }

    #[test]
    fn r_goodness_with_huge_r_is_universal() {
        let g = Gnp::new(30, 0.4).seeded(1).generate();
        let u = all_nodes(&g);
        let x = BTreeSet::new();
        let r = g.node_count() as f64;
        assert!(bad_nodes(&g, &x, &u, r).is_empty());
    }

    #[test]
    fn lemma2_light_triangle_edges_survive_in_delta_often() {
        // With sparse planted triangles, every edge has support 1, so a
        // random X of density 1/(9 n^eps) very rarely removes them.
        let gen = PlantedLight::new(60, 10);
        let g = gen.generate();
        let mut rng = StdRng::seed_from_u64(5);
        let mut survived = 0usize;
        let trials = 50;
        for _ in 0..trials {
            let x = sample_x(&g, 0.4, &mut rng);
            let t = gen.planted()[0];
            if pair_in_delta(&g, &x, t[0], t[1])
                && pair_in_delta(&g, &x, t[1], t[2])
                && pair_in_delta(&g, &x, t[0], t[2])
            {
                survived += 1;
            }
        }
        // Lemma 2 promises probability at least 2/3; leave slack for noise.
        assert!(
            survived * 2 >= trials,
            "light triangle survived only {survived}/{trials} times"
        );
    }

    #[test]
    fn lemma3_bad_node_bound_on_random_graph() {
        let g = Gnp::new(40, 0.5).seeded(77).generate();
        let n = g.node_count() as f64;
        let epsilon = 0.3;
        let r = (54.0 * n.powf(1.0 + epsilon) * n.ln()).sqrt();
        let mut rng = StdRng::seed_from_u64(123);
        let x = sample_x(&g, epsilon, &mut rng);
        let u = all_nodes(&g);
        let bad = bad_nodes(&g, &x, &u, r);
        assert!(
            bad.len() * 2 <= g.node_count(),
            "more than half the nodes are bad: {}",
            bad.len()
        );
    }

    #[test]
    fn statement2_holds_for_full_x_on_dense_graph() {
        // With X = V, every pair with a common neighbour is excluded from
        // Delta(X); the only surviving pairs have support 0 < bound.
        let g = Gnp::new(30, 0.5).seeded(3).generate();
        let x = all_nodes(&g);
        assert!(statement2_holds(&g, &x, 0.2));
    }
}
