//! The [`AdjacencyView`] abstraction: read-only adjacency access shared by
//! the frozen CSR [`Graph`] and live structures such as the incremental
//! triangle indexes of `congest-stream`.
//!
//! Everything downstream of the substrate — the centralized reference
//! algorithms, the CONGEST simulator, the Theorem 1/2 drivers — only ever
//! *reads* a graph: node count, sorted neighbour lists, derived adjacency
//! queries. Abstracting that surface into a trait lets those consumers run
//! directly on any structure that can answer the queries, with no `O(m)`
//! snapshot rebuild in between. A mutable engine that keeps per-node sorted
//! neighbour lists implements [`AdjacencyView`] for free.
//!
//! The contract every implementation must uphold:
//!
//! * nodes are `0..node_count()`;
//! * [`neighbors`](AdjacencyView::neighbors) returns a **sorted,
//!   duplicate-free** slice, symmetric across endpoints (`v ∈ N(u)` iff
//!   `u ∈ N(v)`) and never containing the node itself (simple graphs).
//!
//! All provided methods are implemented against that contract and match the
//! semantics of the corresponding inherent methods of [`Graph`].

use crate::{NodeId, Triangle};

/// Length-skew ratio at which [`for_each_common`] switches from the
/// branch-light linear merge to galloping search, and past which
/// [`intersection_cost_estimate`] bills the logarithmic kernel instead
/// of the merge. Merge is `O(d_min + d_max)`, galloping is
/// `O(d_min · log(d_max/d_min))`; the gallop wins once the skew beats
/// the log by a comfortable margin.
pub const GALLOP_RATIO: usize = 16;

/// Visits each element of `a ∩ b` in increasing order, for sorted,
/// duplicate-free slices. This is *the* common-neighbour intersection
/// core of the workspace — the trait defaults below, [`Graph`]'s
/// inherent methods and the `congest-stream` engines all route through
/// it. The kernel is chosen adaptively per call from the length ratio:
///
/// * ratio ≥ [`GALLOP_RATIO`] (hub nodes under power-law churn): each
///   element of the short list is galloped into the long one —
///   exponential doubling from an advancing lower bound, then a binary
///   search inside the bracket. The lower bound never moves backwards,
///   so the whole pass is `O(d_min · log(d_max/d_min))` amortized
///   rather than `O(d_min · log d_max)` for repeated full-width probes.
/// * balanced lengths: a branch-light two-pointer merge whose index
///   advances are computed from comparisons instead of a three-way
///   `match`, keeping the loop free of hard-to-predict branches.
///
/// [`Graph`]: crate::Graph
pub fn for_each_common<F: FnMut(NodeId)>(a: &[NodeId], b: &[NodeId], mut visit: F) {
    let (mut small, mut large) = (a, b);
    if small.len() > large.len() {
        std::mem::swap(&mut small, &mut large);
    }
    if small.is_empty() {
        return;
    }
    if large.len() / small.len() >= GALLOP_RATIO {
        let mut lo = 0usize;
        for &w in small {
            // Exponential search: double the step until the probe value
            // at `lo + step` is no longer below `w` (or runs off the
            // end), then binary-search the bracket that doubling
            // established. `lo` only ever advances.
            let mut step = 1usize;
            while lo + step < large.len() && large[lo + step] < w {
                step <<= 1;
            }
            let hi = (lo + step + 1).min(large.len());
            match large[lo..hi].binary_search(&w) {
                Ok(pos) => {
                    visit(w);
                    lo += pos + 1;
                }
                Err(pos) => lo += pos,
            }
            if lo >= large.len() {
                break;
            }
        }
    } else {
        let (mut i, mut j) = (0usize, 0usize);
        while i < small.len() && j < large.len() {
            let x = small[i];
            let y = large[j];
            if x == y {
                visit(x);
                i += 1;
                j += 1;
            } else {
                i += usize::from(x < y);
                j += usize::from(y < x);
            }
        }
    }
}

/// Estimated comparison count of [`for_each_common`] on lists of length
/// `da` and `db`, matching the kernel the lengths select: skewed pairs
/// bill the gallop at `d_min · (log2(d_max/d_min) + 1)`, balanced pairs
/// bill the merge at `d_min + d_max`. Never returns zero, so cost-based
/// chunking (the sharded pool's split budgeting) always makes progress.
pub fn intersection_cost_estimate(da: usize, db: usize) -> usize {
    let (min, max) = if da <= db { (da, db) } else { (db, da) };
    if min == 0 {
        return 1;
    }
    let ratio = max / min;
    let cost = if ratio >= GALLOP_RATIO {
        min * (usize::BITS - ratio.leading_zeros()) as usize
    } else {
        min + max
    };
    cost.max(1)
}

/// `a ∩ b` for sorted, duplicate-free slices (see [`for_each_common`]).
pub fn intersect_sorted(a: &[NodeId], b: &[NodeId]) -> Vec<NodeId> {
    let mut out = Vec::new();
    for_each_common(a, b, |w| out.push(w));
    out
}

/// `|a ∩ b|` for sorted, duplicate-free slices, counted without
/// materializing the intersection (see [`for_each_common`]).
pub fn count_common(a: &[NodeId], b: &[NodeId]) -> usize {
    let mut count = 0usize;
    for_each_common(a, b, |_| count += 1);
    count
}

/// Read-only access to an undirected graph's sorted adjacency structure.
///
/// The module-level documentation in `view.rs` spells out the contract.
/// [`Graph`] implements this by borrowing its CSR rows; live engines
/// implement it by borrowing their mutable neighbour lists, which is what
/// lets the static drivers and the centralized oracle run on an evolving
/// graph without a snapshot.
///
/// [`Graph`]: crate::Graph
pub trait AdjacencyView {
    /// Number of nodes `n`; nodes are `0..n`.
    fn node_count(&self) -> usize;

    /// Sorted neighbour list of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    fn neighbors(&self, node: NodeId) -> &[NodeId];

    /// Number of undirected edges `m`.
    ///
    /// The default recounts half the degree sum in `O(n)`;
    /// implementations that track the count should override it.
    fn edge_count(&self) -> usize {
        let directed: usize = self.nodes().map(|v| self.degree(v)).sum();
        directed / 2
    }

    /// Degree of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    fn degree(&self, node: NodeId) -> usize {
        self.neighbors(node).len()
    }

    /// Iterator over all node identifiers `0..n`.
    fn nodes(&self) -> NodeIdRange {
        NodeIdRange {
            range: 0..self.node_count(),
        }
    }

    /// Maximum degree `d_max` over all nodes (0 for the empty graph).
    fn max_degree(&self) -> usize {
        self.nodes().map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Whether `{a, b}` is an edge. Self-queries and out-of-range queries
    /// return `false`.
    fn has_edge(&self, a: NodeId, b: NodeId) -> bool {
        if a == b || a.index() >= self.node_count() || b.index() >= self.node_count() {
            return false;
        }
        // Search from the lower-degree endpoint.
        let (from, to) = if self.degree(a) <= self.degree(b) {
            (a, b)
        } else {
            (b, a)
        };
        self.neighbors(from).binary_search(&to).is_ok()
    }

    /// Whether the triple `t` has its three pairs in the edge set.
    fn is_triangle(&self, t: Triangle) -> bool {
        t.edges().iter().all(|e| self.has_edge(e.lo(), e.hi()))
    }

    /// The edge support `#({a,b})` of the paper: the number of common
    /// neighbours of `a` and `b`, counted without materializing them
    /// (via [`count_common`]).
    ///
    /// # Panics
    ///
    /// Panics if `a` or `b` is out of range.
    fn edge_support(&self, a: NodeId, b: NodeId) -> usize {
        count_common(self.neighbors(a), self.neighbors(b))
    }

    /// The sorted common neighbourhood `N(a) ∩ N(b)` (via
    /// [`intersect_sorted`]).
    ///
    /// # Panics
    ///
    /// Panics if `a` or `b` is out of range.
    fn common_neighbors(&self, a: NodeId, b: NodeId) -> Vec<NodeId> {
        intersect_sorted(self.neighbors(a), self.neighbors(b))
    }
}

/// Iterator over the node identifiers `0..n` of a view (a concrete type so
/// [`AdjacencyView`] stays object-safe and usable on older toolchains).
#[derive(Debug, Clone)]
pub struct NodeIdRange {
    range: std::ops::Range<usize>,
}

impl Iterator for NodeIdRange {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        self.range.next().map(NodeId::from_index)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.range.size_hint()
    }
}

impl ExactSizeIterator for NodeIdRange {}

impl AdjacencyView for crate::Graph {
    fn node_count(&self) -> usize {
        crate::Graph::node_count(self)
    }

    fn neighbors(&self, node: NodeId) -> &[NodeId] {
        crate::Graph::neighbors(self, node)
    }

    fn edge_count(&self) -> usize {
        crate::Graph::edge_count(self)
    }

    fn degree(&self, node: NodeId) -> usize {
        crate::Graph::degree(self, node)
    }

    fn has_edge(&self, a: NodeId, b: NodeId) -> bool {
        crate::Graph::has_edge(self, a, b)
    }
}

// A reference to a view is itself a view, so generic consumers can be fed
// either owned or borrowed structures.
impl<V: AdjacencyView + ?Sized> AdjacencyView for &V {
    fn node_count(&self) -> usize {
        (**self).node_count()
    }

    fn neighbors(&self, node: NodeId) -> &[NodeId] {
        (**self).neighbors(node)
    }

    fn edge_count(&self) -> usize {
        (**self).edge_count()
    }

    fn degree(&self, node: NodeId) -> usize {
        (**self).degree(node)
    }

    fn has_edge(&self, a: NodeId, b: NodeId) -> bool {
        (**self).has_edge(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::Gnp;
    use crate::{Graph, GraphBuilder};

    fn v(i: u32) -> NodeId {
        NodeId(i)
    }

    /// A minimal non-`Graph` implementation, as the streaming engines keep
    /// it: one sorted `Vec` per node.
    struct VecAdjacency(Vec<Vec<NodeId>>);

    impl AdjacencyView for VecAdjacency {
        fn node_count(&self) -> usize {
            self.0.len()
        }

        fn neighbors(&self, node: NodeId) -> &[NodeId] {
            &self.0[node.index()]
        }
    }

    fn sample_graph() -> Graph {
        let mut b = GraphBuilder::new(5);
        b.add_edge(v(0), v(1)).unwrap();
        b.add_edge(v(1), v(2)).unwrap();
        b.add_edge(v(0), v(2)).unwrap();
        b.add_edge(v(2), v(3)).unwrap();
        b.build()
    }

    fn as_vec_adjacency(g: &Graph) -> VecAdjacency {
        VecAdjacency(g.nodes().map(|u| g.neighbors(u).to_vec()).collect())
    }

    #[test]
    fn graph_view_agrees_with_inherent_methods() {
        let g = Gnp::new(30, 0.2).seeded(5).generate();
        let view: &dyn AdjacencyView = &g;
        assert_eq!(view.node_count(), g.node_count());
        assert_eq!(view.edge_count(), g.edge_count());
        assert_eq!(view.max_degree(), g.max_degree());
        for u in g.nodes() {
            assert_eq!(view.neighbors(u), g.neighbors(u));
            assert_eq!(view.degree(u), g.degree(u));
            for w in g.nodes() {
                assert_eq!(view.has_edge(u, w), g.has_edge(u, w));
                if u != w {
                    assert_eq!(view.common_neighbors(u, w), g.common_neighbors(u, w));
                    assert_eq!(view.edge_support(u, w), g.edge_support(u, w));
                }
            }
        }
    }

    #[test]
    fn default_methods_work_for_a_non_graph_implementation() {
        let g = sample_graph();
        let view = as_vec_adjacency(&g);
        assert_eq!(AdjacencyView::edge_count(&view), 4);
        assert_eq!(view.max_degree(), 3);
        assert!(view.has_edge(v(0), v(2)));
        assert!(!view.has_edge(v(0), v(3)));
        assert!(!view.has_edge(v(0), v(0)));
        assert!(!view.has_edge(v(0), v(99)));
        assert!(view.is_triangle(Triangle::new(v(0), v(1), v(2))));
        assert!(!view.is_triangle(Triangle::new(v(1), v(2), v(3))));
        assert_eq!(view.common_neighbors(v(0), v(1)), vec![v(2)]);
        let nodes: Vec<NodeId> = view.nodes().collect();
        assert_eq!(nodes.len(), 5);
        assert_eq!(nodes[4], v(4));
        assert_eq!(view.nodes().len(), 5);
    }

    /// Reference intersection: plain merge, no kernel selection.
    fn naive_intersect(a: &[NodeId], b: &[NodeId]) -> Vec<NodeId> {
        a.iter().filter(|w| b.contains(w)).copied().collect()
    }

    #[test]
    fn both_kernels_match_the_naive_intersection() {
        // Deterministic pseudo-random sorted sets across a sweep of
        // length pairs that straddles GALLOP_RATIO from both sides.
        let mut state = 0x9e37u64;
        let mut next = move |bound: u32| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as u32) % bound
        };
        let mut sorted_set = |len: usize, bound: u32| {
            let mut v: Vec<NodeId> = (0..len * 2).map(|_| NodeId(next(bound))).collect();
            v.sort_unstable();
            v.dedup();
            v.truncate(len);
            v
        };
        for (la, lb) in [
            (0, 0),
            (0, 40),
            (1, 1),
            (3, 200),
            (17, 17),
            (10, 10 * GALLOP_RATIO),
            (10, 10 * GALLOP_RATIO - 1),
            (64, 64),
            (5, 4096),
        ] {
            for bound in [8u32, 64, 1 << 14] {
                let a = sorted_set(la, bound);
                let b = sorted_set(lb, bound);
                assert_eq!(
                    intersect_sorted(&a, &b),
                    naive_intersect(&a, &b),
                    "lens ({la},{lb}) bound {bound}"
                );
                assert_eq!(count_common(&a, &b), naive_intersect(&a, &b).len());
                // Symmetry: orientation must not change the result.
                assert_eq!(intersect_sorted(&b, &a), intersect_sorted(&a, &b));
            }
        }
    }

    #[test]
    fn galloping_handles_adversarial_layouts() {
        // All of small before large, after large, interleaved at the
        // ends — the advancing lower bound must not skip matches.
        let large: Vec<NodeId> = (100..1700).map(NodeId).collect();
        let before: Vec<NodeId> = (0..5).map(NodeId).collect();
        let after: Vec<NodeId> = (2000..2005).map(NodeId).collect();
        let edges = vec![NodeId(100), NodeId(1699)];
        assert!(intersect_sorted(&before, &large).is_empty());
        assert!(intersect_sorted(&after, &large).is_empty());
        assert_eq!(intersect_sorted(&edges, &large), edges);
        // Dense duplicated-value-free run fully contained.
        let inside: Vec<NodeId> = (500..510).map(NodeId).collect();
        assert_eq!(intersect_sorted(&inside, &large), inside);
    }

    #[test]
    fn cost_estimate_matches_kernel_selection() {
        // Balanced pairs bill the merge.
        assert_eq!(intersection_cost_estimate(4, 4), 8);
        assert_eq!(intersection_cost_estimate(10, 30), 40);
        // Skewed pairs bill the gallop: min · (log2(max/min) + 1).
        assert_eq!(intersection_cost_estimate(10, 160), 10 * 5);
        assert_eq!(intersection_cost_estimate(160, 10), 10 * 5);
        assert_eq!(intersection_cost_estimate(1, 1024), 11);
        // The gallop estimate undercuts the merge estimate on skew.
        assert!(intersection_cost_estimate(10, 160) < 10 + 160);
        // Never zero, so cost-budgeted chunking always progresses.
        assert_eq!(intersection_cost_estimate(0, 0), 1);
        assert_eq!(intersection_cost_estimate(0, 100), 1);
    }

    #[test]
    fn references_are_views_too() {
        fn count<V: AdjacencyView>(view: V) -> usize {
            view.node_count()
        }
        let g = sample_graph();
        // `&Graph` goes through the blanket `impl AdjacencyView for &V`.
        let by_ref: &Graph = &g;
        assert_eq!(count(by_ref), 5);
        let dynamic: &dyn AdjacencyView = &g;
        assert_eq!(count(dynamic), 5);
    }
}
