//! Edges, triangles and sets of triangles.

use std::collections::BTreeSet;
use std::fmt;

use crate::NodeId;

/// An undirected edge, stored with its endpoints in increasing order.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Edge {
    lo: NodeId,
    hi: NodeId,
}

impl Edge {
    /// Creates the edge `{a, b}`.
    ///
    /// # Panics
    ///
    /// Panics if `a == b` — the model only considers simple graphs.
    pub fn new(a: NodeId, b: NodeId) -> Self {
        assert!(a != b, "an edge must join two distinct nodes, got {a:?}");
        if a < b {
            Edge { lo: a, hi: b }
        } else {
            Edge { lo: b, hi: a }
        }
    }

    /// The smaller endpoint.
    pub fn lo(&self) -> NodeId {
        self.lo
    }

    /// The larger endpoint.
    pub fn hi(&self) -> NodeId {
        self.hi
    }

    /// Both endpoints, in increasing order.
    pub fn endpoints(&self) -> (NodeId, NodeId) {
        (self.lo, self.hi)
    }

    /// Whether `node` is one of the endpoints.
    pub fn contains(&self, node: NodeId) -> bool {
        self.lo == node || self.hi == node
    }

    /// Given one endpoint, returns the other; `None` if `node` is not an
    /// endpoint.
    pub fn other(&self, node: NodeId) -> Option<NodeId> {
        if node == self.lo {
            Some(self.hi)
        } else if node == self.hi {
            Some(self.lo)
        } else {
            None
        }
    }
}

impl fmt::Debug for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{{}, {}}}", self.lo, self.hi)
    }
}

impl fmt::Display for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{{}, {}}}", self.lo, self.hi)
    }
}

/// An unordered triple of distinct nodes, stored in increasing order.
///
/// In the paper's notation a triangle is an element of `T(V)` whose three
/// pairs are all edges; a `Triangle` value is just the triple — whether it
/// is an actual triangle of a given graph is checked with
/// [`Graph::is_triangle`](crate::Graph::is_triangle).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Triangle {
    a: NodeId,
    b: NodeId,
    c: NodeId,
}

impl Triangle {
    /// Creates the triple `{a, b, c}`.
    ///
    /// # Panics
    ///
    /// Panics if two of the three nodes coincide.
    pub fn new(a: NodeId, b: NodeId, c: NodeId) -> Self {
        assert!(
            a != b && b != c && a != c,
            "a triangle must have three distinct nodes, got {a:?}, {b:?}, {c:?}"
        );
        let mut nodes = [a, b, c];
        nodes.sort();
        Triangle {
            a: nodes[0],
            b: nodes[1],
            c: nodes[2],
        }
    }

    /// The three nodes in increasing order.
    pub fn nodes(&self) -> [NodeId; 3] {
        [self.a, self.b, self.c]
    }

    /// The three edges (pairs) of the triple.
    pub fn edges(&self) -> [Edge; 3] {
        [
            Edge::new(self.a, self.b),
            Edge::new(self.a, self.c),
            Edge::new(self.b, self.c),
        ]
    }

    /// Whether `node` is one of the three nodes.
    pub fn contains(&self, node: NodeId) -> bool {
        self.a == node || self.b == node || self.c == node
    }

    /// Whether `edge` is one of the three pairs of the triple (the relation
    /// `e ∈ t` of the paper).
    pub fn contains_edge(&self, edge: Edge) -> bool {
        self.edges().contains(&edge)
    }
}

impl fmt::Debug for Triangle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{{}, {}, {}}}", self.a, self.b, self.c)
    }
}

impl fmt::Display for Triangle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{{}, {}, {}}}", self.a, self.b, self.c)
    }
}

/// A set of triangles (the output type `T_i` of a node, and the union `T`).
///
/// Backed by an ordered set so iteration order is deterministic, which keeps
/// experiment output and tests reproducible.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TriangleSet {
    inner: BTreeSet<Triangle>,
}

impl TriangleSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of triangles in the set.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Inserts a triangle; returns `true` if it was not already present.
    pub fn insert(&mut self, triangle: Triangle) -> bool {
        self.inner.insert(triangle)
    }

    /// Removes a triangle; returns `true` if it was present.
    ///
    /// Used by the incremental engine of `congest-stream`, which retires
    /// triangles as their edges are deleted.
    pub fn remove(&mut self, triangle: &Triangle) -> bool {
        self.inner.remove(triangle)
    }

    /// Whether the set contains `triangle`.
    pub fn contains(&self, triangle: &Triangle) -> bool {
        self.inner.contains(triangle)
    }

    /// Iterates over the triangles in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = &Triangle> + '_ {
        self.inner.iter()
    }

    /// Adds every triangle of `other` to `self`.
    pub fn union_with(&mut self, other: &TriangleSet) {
        for t in other.iter() {
            self.inner.insert(*t);
        }
    }

    /// The set of edges covered by the triangles — the map `P(R)` of the
    /// paper (Section 2), used by the lower-bound machinery.
    pub fn edge_cover(&self) -> BTreeSet<Edge> {
        let mut edges = BTreeSet::new();
        for t in self.iter() {
            for e in t.edges() {
                edges.insert(e);
            }
        }
        edges
    }

    /// Triangles containing a given node.
    pub fn containing(&self, node: NodeId) -> impl Iterator<Item = &Triangle> + '_ {
        self.inner.iter().filter(move |t| t.contains(node))
    }
}

impl FromIterator<Triangle> for TriangleSet {
    fn from_iter<I: IntoIterator<Item = Triangle>>(iter: I) -> Self {
        TriangleSet {
            inner: iter.into_iter().collect(),
        }
    }
}

impl Extend<Triangle> for TriangleSet {
    fn extend<I: IntoIterator<Item = Triangle>>(&mut self, iter: I) {
        self.inner.extend(iter);
    }
}

impl<'a> IntoIterator for &'a TriangleSet {
    type Item = &'a Triangle;
    type IntoIter = std::collections::btree_set::Iter<'a, Triangle>;

    fn into_iter(self) -> Self::IntoIter {
        self.inner.iter()
    }
}

impl IntoIterator for TriangleSet {
    type Item = Triangle;
    type IntoIter = std::collections::btree_set::IntoIter<Triangle>;

    fn into_iter(self) -> Self::IntoIter {
        self.inner.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn edge_is_canonical() {
        assert_eq!(Edge::new(v(3), v(1)), Edge::new(v(1), v(3)));
        let e = Edge::new(v(5), v(2));
        assert_eq!(e.lo(), v(2));
        assert_eq!(e.hi(), v(5));
        assert_eq!(e.endpoints(), (v(2), v(5)));
        assert!(e.contains(v(5)));
        assert!(!e.contains(v(3)));
        assert_eq!(e.other(v(2)), Some(v(5)));
        assert_eq!(e.other(v(9)), None);
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn edge_rejects_self_loop() {
        let _ = Edge::new(v(1), v(1));
    }

    #[test]
    fn triangle_is_canonical() {
        let t1 = Triangle::new(v(5), v(1), v(3));
        let t2 = Triangle::new(v(3), v(5), v(1));
        assert_eq!(t1, t2);
        assert_eq!(t1.nodes(), [v(1), v(3), v(5)]);
        assert!(t1.contains(v(3)));
        assert!(!t1.contains(v(4)));
        assert!(t1.contains_edge(Edge::new(v(1), v(5))));
        assert!(!t1.contains_edge(Edge::new(v(1), v(4))));
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn triangle_rejects_duplicates() {
        let _ = Triangle::new(v(1), v(2), v(1));
    }

    #[test]
    fn triangle_edges() {
        let t = Triangle::new(v(1), v(2), v(3));
        let edges = t.edges();
        assert!(edges.contains(&Edge::new(v(1), v(2))));
        assert!(edges.contains(&Edge::new(v(1), v(3))));
        assert!(edges.contains(&Edge::new(v(2), v(3))));
    }

    #[test]
    fn triangle_set_remove() {
        let mut s = TriangleSet::new();
        let t = Triangle::new(v(1), v(2), v(3));
        s.insert(t);
        assert!(s.remove(&t));
        assert!(!s.remove(&t));
        assert!(s.is_empty());
    }

    #[test]
    fn triangle_set_dedups_and_unions() {
        let mut s = TriangleSet::new();
        assert!(s.is_empty());
        assert!(s.insert(Triangle::new(v(1), v(2), v(3))));
        assert!(!s.insert(Triangle::new(v(3), v(2), v(1))));
        assert_eq!(s.len(), 1);

        let mut other = TriangleSet::new();
        other.insert(Triangle::new(v(2), v(3), v(4)));
        s.union_with(&other);
        assert_eq!(s.len(), 2);
        assert!(s.contains(&Triangle::new(v(4), v(3), v(2))));
    }

    #[test]
    fn edge_cover_matches_paper_definition() {
        let mut s = TriangleSet::new();
        s.insert(Triangle::new(v(1), v(2), v(3)));
        s.insert(Triangle::new(v(2), v(3), v(4)));
        let cover = s.edge_cover();
        // 3 + 3 edges with {2,3} shared => 5 distinct edges.
        assert_eq!(cover.len(), 5);
        assert!(cover.contains(&Edge::new(v(2), v(3))));
    }

    #[test]
    fn containing_filters_by_node() {
        let s: TriangleSet = [
            Triangle::new(v(1), v(2), v(3)),
            Triangle::new(v(4), v(5), v(6)),
            Triangle::new(v(1), v(5), v(6)),
        ]
        .into_iter()
        .collect();
        assert_eq!(s.containing(v(1)).count(), 2);
        assert_eq!(s.containing(v(4)).count(), 1);
        assert_eq!(s.containing(v(9)).count(), 0);
    }

    #[test]
    fn iteration_is_sorted_and_deterministic() {
        let s: TriangleSet = [
            Triangle::new(v(7), v(8), v(9)),
            Triangle::new(v(1), v(2), v(3)),
        ]
        .into_iter()
        .collect();
        let listed: Vec<_> = s.iter().copied().collect();
        assert_eq!(listed[0], Triangle::new(v(1), v(2), v(3)));
        assert_eq!(listed[1], Triangle::new(v(7), v(8), v(9)));
    }
}
