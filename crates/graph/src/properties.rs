//! Structural graph properties used by the experiments and examples.

use std::collections::VecDeque;

use crate::{Graph, NodeId};

/// Breadth-first distances from `source`; unreachable nodes get `None`.
pub fn bfs_distances(g: &Graph, source: NodeId) -> Vec<Option<usize>> {
    let mut dist = vec![None; g.node_count()];
    if source.index() >= g.node_count() {
        return dist;
    }
    let mut queue = VecDeque::new();
    dist[source.index()] = Some(0);
    queue.push_back(source);
    while let Some(v) = queue.pop_front() {
        let d = dist[v.index()].expect("dequeued nodes have a distance");
        for &w in g.neighbors(v) {
            if dist[w.index()].is_none() {
                dist[w.index()] = Some(d + 1);
                queue.push_back(w);
            }
        }
    }
    dist
}

/// Whether the graph is connected (the empty graph counts as connected).
pub fn is_connected(g: &Graph) -> bool {
    if g.node_count() == 0 {
        return true;
    }
    bfs_distances(g, NodeId(0)).iter().all(|d| d.is_some())
}

/// The diameter of the graph, or `None` if it is disconnected or empty.
///
/// Computed with one BFS per node — `O(nm)`, fine at simulator scales.
pub fn diameter(g: &Graph) -> Option<usize> {
    if g.node_count() == 0 {
        return None;
    }
    let mut best = 0usize;
    for v in g.nodes() {
        let dist = bfs_distances(g, v);
        for d in &dist {
            match d {
                Some(d) => best = best.max(*d),
                None => return None,
            }
        }
    }
    Some(best)
}

/// Average degree `2m / n` (0 for the empty graph).
pub fn average_degree(g: &Graph) -> f64 {
    if g.node_count() == 0 {
        0.0
    } else {
        2.0 * g.edge_count() as f64 / g.node_count() as f64
    }
}

/// Degree histogram: entry `i` is the number of nodes of degree `i`.
pub fn degree_histogram(g: &Graph) -> Vec<usize> {
    let mut hist = vec![0usize; g.max_degree() + 1];
    for v in g.nodes() {
        hist[g.degree(v)] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::Classic;

    #[test]
    fn path_distances_and_diameter() {
        let g = Classic::Path(5).generate();
        let dist = bfs_distances(&g, NodeId(0));
        assert_eq!(dist, vec![Some(0), Some(1), Some(2), Some(3), Some(4)]);
        assert_eq!(diameter(&g), Some(4));
        assert!(is_connected(&g));
    }

    #[test]
    fn disconnected_graph_has_no_diameter() {
        let g = crate::GraphBuilder::new(4).build();
        assert_eq!(diameter(&g), None);
        assert!(!is_connected(&g));
    }

    #[test]
    fn complete_graph_diameter_is_one() {
        let g = Classic::Complete(6).generate();
        assert_eq!(diameter(&g), Some(1));
        assert!((average_degree(&g) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn star_degree_histogram() {
        let g = Classic::Star(5).generate();
        let hist = degree_histogram(&g);
        assert_eq!(hist[1], 4);
        assert_eq!(hist[4], 1);
    }

    #[test]
    fn empty_graph_edge_cases() {
        let g = crate::GraphBuilder::new(0).build();
        assert!(is_connected(&g));
        assert_eq!(diameter(&g), None);
        assert_eq!(average_degree(&g), 0.0);
    }
}
