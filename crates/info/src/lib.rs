//! # congest-info — lower-bound experiment machinery
//!
//! The paper's lower bounds (Theorem 3 and Proposition 5) are
//! information-theoretic: on the random input `G(n, 1/2)`, the node that
//! outputs the most triangles must *learn* the existence of every edge in
//! the cover `P(T_i)` of its output, so its transcript carries
//! `Ω(|P(T_i)|)` bits, and with high probability `|P(T_i)| = Ω(n^{4/3})`
//! (via Rivin's inequality, Lemma 4). Dividing by the `O(n log n)` bits a
//! node can receive per round gives the `Ω(n^{1/3}/log n)` round bound —
//! and `Ω(n/log n)` for local listing, where every node must learn
//! `Ω(n^2)` bits.
//!
//! A lower bound cannot be "run", but its premises and the quantities it
//! bounds can be measured. This crate provides:
//!
//! * [`rivin_edge_lower_bound`] — Lemma 4: a graph with `t` triangles has
//!   at least `(√2/3)·t^{2/3}` edges;
//! * [`edge_cover_size`] — `|P(R)|` for an output set `R`;
//! * [`LowerBoundReport`] — given the per-node outputs and the per-node
//!   received-bit counters of a listing run, computes the max-output node
//!   `w(T)`, its cover size, the implied round lower bound and the actual
//!   transcript length, so the experiment harness can verify that every
//!   implementation respects the bound (and by how much).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use congest_graph::{Graph, NodeId, TriangleSet};
use congest_sim::Metrics;

/// Lemma 4 (Rivin): a graph containing `t` triangles has at least
/// `(√2 / 3) · t^{2/3}` edges.
///
/// ```
/// use congest_info::rivin_edge_lower_bound;
/// assert_eq!(rivin_edge_lower_bound(0), 0.0);
/// // K4 has 4 triangles and 6 edges; the bound gives ≈ 1.19.
/// assert!(rivin_edge_lower_bound(4) <= 6.0);
/// ```
pub fn rivin_edge_lower_bound(triangles: usize) -> f64 {
    (2.0f64).sqrt() / 3.0 * (triangles as f64).powf(2.0 / 3.0)
}

/// `|P(R)|`: the number of distinct edges covered by a set of triangles.
pub fn edge_cover_size(output: &TriangleSet) -> usize {
    output.edge_cover().len()
}

/// Checks Lemma 4 on a concrete graph: its edge count must be at least the
/// Rivin bound for its triangle count.
pub fn rivin_holds_for(graph: &Graph) -> bool {
    let t = congest_graph::triangles::count_all(graph);
    graph.edge_count() as f64 >= rivin_edge_lower_bound(t) - 1e-9
}

/// Measured and implied quantities of the Theorem 3 argument for one
/// listing run.
#[derive(Debug, Clone, PartialEq)]
pub struct LowerBoundReport {
    /// The node `w(T)` that output the most triangles.
    pub witness: NodeId,
    /// Number of triangles output by the witness.
    pub witness_triangles: usize,
    /// `|P(T_w)|`: edges covered by the witness's output.
    pub witness_cover: usize,
    /// Rivin lower bound on the cover implied by the output size alone.
    pub rivin_cover_bound: f64,
    /// Bits actually received by the witness during the run.
    pub witness_received_bits: u64,
    /// Bits the witness can receive per round (its bandwidth budget times
    /// its number of incident links).
    pub witness_capacity_per_round: u64,
    /// The round lower bound implied by the measured cover:
    /// `witness_cover / witness_capacity_per_round` (in rounds).
    pub implied_round_bound: f64,
    /// Rounds the run actually took.
    pub measured_rounds: u64,
}

impl LowerBoundReport {
    /// Builds the report from the per-node outputs and metrics of a listing
    /// run in the given model.
    ///
    /// `links_per_node` is the number of incident communication links of a
    /// node: `n − 1` in the CONGEST clique, the node's degree in the plain
    /// CONGEST model (pass the maximum degree for a conservative bound).
    ///
    /// # Panics
    ///
    /// Panics if `per_node` is empty.
    pub fn from_run(
        per_node: &[TriangleSet],
        metrics: &Metrics,
        bandwidth_bits: usize,
        links_per_node: usize,
    ) -> Self {
        assert!(!per_node.is_empty(), "a run must have at least one node");
        let witness_index = per_node
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.len().cmp(&b.1.len()).then(b.0.cmp(&a.0)))
            .map(|(i, _)| i)
            .expect("non-empty runs have a witness");
        let witness_output = &per_node[witness_index];
        let witness_cover = edge_cover_size(witness_output);
        let capacity = (bandwidth_bits * links_per_node.max(1)) as u64;
        LowerBoundReport {
            witness: NodeId::from_index(witness_index),
            witness_triangles: witness_output.len(),
            witness_cover,
            rivin_cover_bound: rivin_edge_lower_bound(witness_output.len()),
            witness_received_bits: metrics.received_bits[witness_index],
            witness_capacity_per_round: capacity,
            implied_round_bound: witness_cover as f64 / capacity.max(1) as f64,
            measured_rounds: metrics.rounds,
        }
    }

    /// Whether the measured run respects the implied round bound (it always
    /// should — a violation would mean the algorithm output triangles whose
    /// edges it never learned, i.e. a soundness bug or an accounting bug).
    pub fn is_respected(&self) -> bool {
        self.measured_rounds as f64 + 1e-9 >= self.implied_round_bound.floor()
    }

    /// The analytic `Ω(n^{1/3} / ln n)` bound of Theorem 3 evaluated at
    /// `n` (with constant 1), for plotting alongside measurements.
    pub fn theorem3_curve(n: usize) -> f64 {
        let n = n.max(2) as f64;
        n.powf(1.0 / 3.0) / n.ln()
    }

    /// The analytic `Ω(n / ln n)` bound of Proposition 5 (local listing)
    /// evaluated at `n` (with constant 1).
    pub fn proposition5_curve(n: usize) -> f64 {
        let n = n.max(2) as f64;
        n / n.ln()
    }
}

/// The expected number of triangles of `G(n, 1/2)` — `C(n,3)/8` — used by
/// the harness to report how close an instance is to the lower-bound
/// distribution's expectation.
pub fn expected_gnp_half_triangles(n: usize) -> f64 {
    let n = n as f64;
    n * (n - 1.0) * (n - 2.0) / 6.0 / 8.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_graph::generators::{Classic, Gnp};
    use congest_graph::{triangles, Triangle};

    #[test]
    fn rivin_bound_holds_on_assorted_graphs() {
        let graphs = vec![
            Classic::Complete(10).generate(),
            Classic::Cycle(12).generate(),
            Classic::CompleteBipartite(6, 6).generate(),
            Gnp::new(40, 0.3).seeded(1).generate(),
            Gnp::new(40, 0.7).seeded(2).generate(),
        ];
        for g in graphs {
            assert!(rivin_holds_for(&g), "{g:?}");
        }
    }

    #[test]
    fn rivin_bound_is_tight_up_to_constants_on_cliques() {
        // K_n: t = C(n,3), m = C(n,2); the bound says m >= (sqrt2/3) t^{2/3},
        // and indeed C(n,2) / t^{2/3} tends to a constant ~ 3/2^{2/3} ≈ 1.5
        // times larger than sqrt(2)/3 ≈ 0.47.
        for n in [10usize, 20, 40] {
            let t = n * (n - 1) * (n - 2) / 6;
            let m = n * (n - 1) / 2;
            let bound = rivin_edge_lower_bound(t);
            assert!(m as f64 >= bound);
            assert!(m as f64 <= 4.0 * bound, "bound too loose at n={n}");
        }
    }

    #[test]
    fn edge_cover_counts_distinct_edges() {
        let mut set = TriangleSet::new();
        set.insert(Triangle::new(NodeId(0), NodeId(1), NodeId(2)));
        set.insert(Triangle::new(NodeId(1), NodeId(2), NodeId(3)));
        assert_eq!(edge_cover_size(&set), 5);
        assert_eq!(edge_cover_size(&TriangleSet::new()), 0);
    }

    #[test]
    fn lower_bound_report_identifies_the_witness() {
        let g = Classic::Complete(6).generate();
        let all = triangles::list_all(&g);
        // Node 0 outputs everything, node 1 outputs one triangle, the rest
        // output nothing.
        let mut per_node = vec![TriangleSet::new(); 6];
        per_node[0] = all.clone();
        per_node[1].insert(*all.iter().next().unwrap());
        let mut metrics = Metrics::new(6);
        metrics.rounds = 10;
        metrics.received_bits = vec![500, 20, 0, 0, 0, 0];

        let report = LowerBoundReport::from_run(&per_node, &metrics, 10, 5);
        assert_eq!(report.witness, NodeId(0));
        assert_eq!(report.witness_triangles, all.len());
        assert_eq!(report.witness_cover, g.edge_count());
        assert_eq!(report.witness_received_bits, 500);
        assert_eq!(report.witness_capacity_per_round, 50);
        assert!(report.is_respected());
        assert!(report.rivin_cover_bound <= report.witness_cover as f64);
    }

    #[test]
    fn analytic_curves_are_increasing() {
        assert!(LowerBoundReport::theorem3_curve(1000) > LowerBoundReport::theorem3_curve(100));
        assert!(
            LowerBoundReport::proposition5_curve(1000) > LowerBoundReport::proposition5_curve(100)
        );
        assert!(LowerBoundReport::proposition5_curve(500) > LowerBoundReport::theorem3_curve(500));
    }

    #[test]
    fn expected_triangle_count_of_gnp_half() {
        // n = 8: C(8,3)/8 = 56/8 = 7.
        assert!((expected_gnp_half_triangles(8) - 7.0).abs() < 1e-12);
    }
}
